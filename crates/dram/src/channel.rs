//! Multi-channel scale-out: one [`Controller`] per channel under a shared
//! clock.
//!
//! DRAM channels are fully independent — each has its own command/address
//! bus, data bus and controller — so a multi-channel subsystem multiplies
//! peak bandwidth by the channel count.  The [`ChannelRouter`] owns one
//! [`Controller`] per channel of the configuration's
//! [`ChannelTopology`](crate::ChannelTopology) and drives them under a
//! shared clock: each drive step advances the channel whose local clock is
//! furthest behind, so no channel runs ahead of the others by more than one
//! back-pressure window.
//!
//! Because the channels do not interact, every channel's statistics are
//! bit-identical to running that channel's request stream through a
//! stand-alone [`MemorySystem`](crate::MemorySystem) — a property the
//! multi-channel tests pin.  Aggregation happens in [`CombinedStats`]: byte
//! counts and command counts sum across channels, while the elapsed time of
//! the subsystem is the **maximum** over the per-channel elapsed times (the
//! slowest channel finishes last).
//!
//! With a `1 × 1` topology the router degenerates to exactly one controller
//! and reproduces the legacy single-channel results bit-identically on both
//! timing engines.
//!
//! # Threaded drive mode
//!
//! [`ChannelRouter::run_phase_threaded`] executes the same phase with each
//! channel's controller on its own worker thread.  This is sound because the
//! sequential loop's per-channel projection is already independent: the
//! laggard-first clock only decides *which* channel bursts next, never what
//! a burst does, and a channel's queue is refilled exactly when its own
//! stepping frees slots.  Each worker therefore replays the projection
//! `fill → (burst-until-accepting → fill)* → drain` verbatim, and the
//! per-channel [`Stats`] — reassembled in channel order at the join — are
//! **bit-identical to the sequential path for any thread count** (pinned by
//! `tests/parallel_differential.rs`).  See `docs/ARCHITECTURE.md` for the
//! barrier protocol and its determinism invariants.

use crate::controller::{Controller, ControllerConfig};
use crate::error::ConfigError;
use crate::request::{BufferedRequests, Request, RequestSource};
use crate::standards::DramConfig;
use crate::stats::Stats;

/// Per-channel statistics of one measurement window plus aggregation
/// helpers.
///
/// # Examples
///
/// ```
/// use tbi_dram::channel::CombinedStats;
/// use tbi_dram::Stats;
///
/// let mut fast = Stats::new();
/// fast.elapsed_cycles = 100;
/// fast.data_bus_busy_cycles = 90;
/// let mut slow = Stats::new();
/// slow.elapsed_cycles = 120;
/// slow.data_bus_busy_cycles = 84;
/// let combined = CombinedStats::new(vec![fast, slow]);
/// assert_eq!(combined.aggregate().elapsed_cycles, 120);
/// assert_eq!(combined.aggregate().data_bus_busy_cycles, 174);
/// assert!((combined.utilization() - 174.0 / 240.0).abs() < 1e-12);
/// assert!((combined.utilization_spread() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CombinedStats {
    per_channel: Vec<Stats>,
}

impl CombinedStats {
    /// Wraps per-channel statistics (one entry per channel, channel order).
    #[must_use]
    pub fn new(per_channel: Vec<Stats>) -> Self {
        Self { per_channel }
    }

    /// The per-channel statistics in channel order.
    #[must_use]
    pub fn per_channel(&self) -> &[Stats] {
        &self.per_channel
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.per_channel.len()
    }

    /// Aggregated statistics: every counter sums across channels except
    /// `elapsed_cycles`, which is the maximum (channels run concurrently, so
    /// the subsystem finishes when the slowest channel does).
    ///
    /// The reduction uses only commutative, associative operations
    /// (unsigned sums and an unsigned max), so the result is independent of
    /// the order in which per-channel entries are visited — a property the
    /// threaded drive mode relies on and a unit test pins.  The
    /// `per_channel` vector itself is always assembled in channel order by
    /// [`ChannelRouter::stats`], regardless of which worker thread finished
    /// first.
    ///
    /// For a single channel this returns that channel's statistics
    /// unchanged.
    #[must_use]
    pub fn aggregate(&self) -> Stats {
        let mut total = Stats::new();
        let mut max_elapsed = 0u64;
        for stats in &self.per_channel {
            total.merge(stats);
            max_elapsed = max_elapsed.max(stats.elapsed_cycles);
        }
        total.elapsed_cycles = max_elapsed;
        total
    }

    /// Aggregate data-bus utilization in `[0, 1]`: total busy cycles over
    /// `channels × max elapsed` — the fraction of the subsystem's combined
    /// bus-time that carried data.  Idle tail cycles of faster channels count
    /// against it, exactly as they would in hardware.
    ///
    /// Like [`CombinedStats::aggregate`], the computation reduces with a sum
    /// and a max only, so it is independent of per-channel visiting order
    /// (threading-order-independent by construction).
    ///
    /// Returns exactly `0.0` (never NaN) when the set is empty or no channel
    /// has elapsed cycles, so zero-traffic windows serialize cleanly.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let elapsed = self.aggregate().elapsed_cycles;
        if elapsed == 0 || self.per_channel.is_empty() {
            return 0.0;
        }
        let busy: u64 = self
            .per_channel
            .iter()
            .map(|s| s.data_bus_busy_cycles)
            .sum();
        busy as f64 / (elapsed as f64 * self.per_channel.len() as f64)
    }

    /// Spread (max − min) of the per-channel bus utilizations: 0 for a
    /// single channel or a perfectly balanced stripe, larger when the
    /// channel-interleaved mapping leaves some channels under-loaded.
    ///
    /// Edge cases are defined (and pinned by tests) so no NaN can leak into
    /// serialized records: an empty set and a single channel both yield
    /// exactly `0.0`, and a zero-traffic channel (zero elapsed cycles)
    /// contributes a utilization of `0.0` — so one idle channel next to one
    /// busy channel yields the busy channel's utilization as the spread.
    #[must_use]
    pub fn utilization_spread(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for stats in &self.per_channel {
            // `bus_utilization` defines 0/0 as 0.0, keeping idle channels
            // finite here.
            let u = stats.bus_utilization();
            min = min.min(u);
            max = max.max(u);
        }
        if self.per_channel.is_empty() {
            0.0
        } else {
            max - min
        }
    }

    /// Aggregate achieved bandwidth in Gbit/s: the subsystem-wide
    /// utilization scaled by the combined peak of all channel buses.
    #[must_use]
    pub fn aggregate_bandwidth_gbps(&self, clock_mhz: f64, bus_width_bits: u32) -> f64 {
        self.utilization()
            * clock_mhz
            * 1.0e6
            * 2.0
            * f64::from(bus_width_bits)
            * self.per_channel.len() as f64
            / 1.0e9
    }
}

/// One [`Controller`] per channel, stepped under a shared clock.
///
/// # Examples
///
/// ```
/// use tbi_dram::channel::ChannelRouter;
/// use tbi_dram::{ChannelTopology, ControllerConfig, DramConfig, DramStandard, Request};
///
/// # fn main() -> Result<(), tbi_dram::ConfigError> {
/// let config = DramConfig::preset(DramStandard::Ddr4, 3200)?
///     .with_topology(ChannelTopology::new(2, 1));
/// let mut router = ChannelRouter::new(config.clone(), ControllerConfig::default())?;
/// // Stripe 4096 sequential bursts across both channels.
/// let traces: Vec<Vec<Request>> = (0..2)
///     .map(|c| {
///         (0..4096u64)
///             .filter(|i| i % 2 == c)
///             .map(|i| Request::write(config.decode_linear(i / 2)))
///             .collect()
///     })
///     .collect();
/// let stats = router.run_phase(traces.into_iter().map(Vec::into_iter).collect());
/// assert_eq!(stats.aggregate().completed_requests, 4096);
/// assert!(stats.utilization() > 0.8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ChannelRouter {
    controllers: Vec<Controller>,
}

impl ChannelRouter {
    /// Creates one controller per channel of `config.topology`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the DRAM or controller configuration is
    /// invalid.
    pub fn new(config: DramConfig, ctrl: ControllerConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let controllers = (0..config.topology.channels)
            .map(|_| Controller::new(config.clone(), ctrl))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { controllers })
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> u32 {
        self.controllers.len() as u32
    }

    /// The controller of channel `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    #[must_use]
    pub fn controller(&self, channel: u32) -> &Controller {
        &self.controllers[channel as usize]
    }

    /// Mutable access to the controller of channel `channel` — the seam
    /// external drive loops (e.g. the `tbi_sched` stream scheduler) use to
    /// enqueue requests, step the laggard and drain completion logs.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    #[must_use]
    pub fn controller_mut(&mut self, channel: u32) -> &mut Controller {
        &mut self.controllers[channel as usize]
    }

    /// The channel whose local clock is furthest behind among channels with
    /// pending requests — the channel [`ChannelRouter::step`] would advance —
    /// or `None` when no channel has pending work.
    #[must_use]
    pub fn laggard_channel(&self) -> Option<u32> {
        self.laggard().map(|channel| channel as u32)
    }

    /// The DRAM configuration shared by every channel.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        self.controllers[0].config()
    }

    /// Enqueues `request` on `channel`, returning `false` when that
    /// channel's transaction queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn enqueue(&mut self, channel: u32, request: Request) -> bool {
        self.controllers[channel as usize].enqueue(request)
    }

    /// Advances the shared clock by one step: the channel whose local clock
    /// is furthest behind (among channels with pending work) takes one step
    /// of its configured timing engine.  Returns `true` while any channel
    /// has work left.
    pub fn step(&mut self) -> bool {
        if let Some(channel) = self.laggard() {
            self.controllers[channel].step();
        }
        self.controllers.iter().any(|c| c.pending_requests() > 0)
    }

    /// The channel with the smallest local clock among those with pending
    /// requests.
    fn laggard(&self) -> Option<usize> {
        self.controllers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.pending_requests() > 0)
            .min_by_key(|(_, c)| c.now())
            .map(|(i, _)| i)
    }

    /// Feeds one per-channel request stream through each channel under the
    /// shared clock, keeping every channel's queues saturated
    /// (back-pressure per channel), then drains all channels and returns the
    /// per-channel statistics of the window.
    ///
    /// `traces` must hold exactly one iterator per channel, in channel
    /// order.  Because channels do not interact, each channel's statistics
    /// equal a stand-alone [`MemorySystem`](crate::MemorySystem) run of the
    /// same stream; the shared clock only bounds how far channels drift
    /// apart during the computation.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` differs from the channel count.
    pub fn run_phase<I>(&mut self, traces: Vec<I>) -> CombinedStats
    where
        I: Iterator<Item = Request>,
    {
        assert_eq!(
            traces.len(),
            self.controllers.len(),
            "one trace per channel required"
        );
        let mut traces: Vec<std::iter::Fuse<I>> = traces.into_iter().map(Iterator::fuse).collect();
        loop {
            // Fill each channel's free queue slots from its own stream.
            for (controller, trace) in self.controllers.iter_mut().zip(&mut traces) {
                let mut free = controller.free_slots();
                while free > 0 {
                    match trace.next() {
                        Some(request) => {
                            let accepted = controller.enqueue(request);
                            debug_assert!(accepted, "enqueue within free_slots cannot fail");
                            free -= 1;
                        }
                        None => break,
                    }
                }
            }
            // Advance the laggard channel until it can accept again (its
            // stream cannot progress before then, and the other channels
            // advance on their own turns).
            match self.laggard() {
                None => break,
                Some(channel) => {
                    let controller = &mut self.controllers[channel];
                    controller.step();
                    while !controller.can_accept() && controller.pending_requests() > 0 {
                        controller.step();
                    }
                }
            }
        }
        for controller in &mut self.controllers {
            controller.drain();
        }
        self.stats()
    }

    /// Runs the same phase as [`ChannelRouter::run_phase`] with each
    /// channel's controller on its own worker thread, producing
    /// **bit-identical** [`CombinedStats`] (and, when completion logging is
    /// enabled, bit-identical per-channel completion logs) for any
    /// `threads` value.
    ///
    /// Channels never read each other's state, so the sequential laggard
    /// clock only interleaves — it never alters — each channel's operation
    /// sequence.  Every worker replays that per-channel projection
    /// independently: fill the queue from the channel's own stream, burst
    /// until the queue can accept again, refill, and finally drain.  The
    /// per-channel statistics are reassembled in channel order at the join,
    /// so the result does not depend on thread count, channel-to-worker
    /// assignment, or completion order of the workers.
    ///
    /// `threads` is clamped to `1..=channels`; with a single thread the
    /// channels are driven inline on the calling thread (still using the
    /// per-channel projection, which is equivalent to the interleaved
    /// sequential loop).
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` differs from the channel count.
    pub fn run_phase_threaded<I>(&mut self, traces: Vec<I>, threads: usize) -> CombinedStats
    where
        I: Iterator<Item = Request> + Send,
    {
        assert_eq!(
            traces.len(),
            self.controllers.len(),
            "one trace per channel required"
        );
        let threads = threads.clamp(1, self.controllers.len().max(1));
        if threads <= 1 {
            for (controller, trace) in self.controllers.iter_mut().zip(traces) {
                drive_channel(controller, trace);
            }
            return self.stats();
        }
        // Split the channels into `threads` contiguous chunks; the chunking
        // is irrelevant to the result (each channel's work is independent),
        // it only balances the load.
        let chunk = self.controllers.len().div_ceil(threads);
        let mut trace_chunks: Vec<Vec<I>> = Vec::new();
        let mut traces = traces;
        while !traces.is_empty() {
            let rest = traces.split_off(chunk.min(traces.len()));
            trace_chunks.push(std::mem::replace(&mut traces, rest));
        }
        std::thread::scope(|scope| {
            for (controllers, chunk_traces) in self.controllers.chunks_mut(chunk).zip(trace_chunks)
            {
                scope.spawn(move || {
                    for (controller, trace) in controllers.iter_mut().zip(chunk_traces) {
                        drive_channel(controller, trace);
                    }
                });
            }
        });
        self.stats()
    }

    /// The batched counterpart of [`ChannelRouter::run_phase_threaded`]:
    /// one [`RequestSource`] per channel, each drained through a
    /// [`BufferedRequests`] adapter on its worker thread.  Bit-identical to
    /// [`ChannelRouter::run_phase_sources`] for any `threads` value.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len()` differs from the channel count.
    pub fn run_phase_sources_threaded<S: RequestSource + Send>(
        &mut self,
        sources: Vec<S>,
        threads: usize,
    ) -> CombinedStats {
        self.run_phase_threaded(
            sources.into_iter().map(BufferedRequests::new).collect(),
            threads,
        )
    }

    /// Drains every channel to completion, optionally in parallel.
    ///
    /// Draining is a per-channel operation (step until idle, then finalize
    /// the elapsed window), so running the drains on `threads` workers
    /// produces bit-identical controller state to draining each channel in
    /// channel order.  External drive loops whose *decision* phase is
    /// inherently sequential — the `tbi_sched` stream scheduler's policy
    /// loop — use this to parallelize their final drain segment.
    pub fn drain_all(&mut self, threads: usize) {
        let threads = threads.clamp(1, self.controllers.len().max(1));
        if threads <= 1 {
            for controller in &mut self.controllers {
                controller.drain();
            }
            return;
        }
        let chunk = self.controllers.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for controllers in self.controllers.chunks_mut(chunk) {
                scope.spawn(move || {
                    for controller in controllers {
                        controller.drain();
                    }
                });
            }
        });
    }

    /// Feeds one batched [`RequestSource`] per channel through the shared
    /// clock — the slice-at-a-time counterpart of
    /// [`ChannelRouter::run_phase`].
    ///
    /// Each source is drained through a [`BufferedRequests`] adapter, so the
    /// per-channel request sequences (and therefore the statistics) are
    /// bit-identical to `run_phase` over the equivalent scalar iterators
    /// while the mapping work runs in
    /// [`BufferedRequests::DEFAULT_CHUNK`]-sized slices.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len()` differs from the channel count.
    pub fn run_phase_sources<S: RequestSource>(&mut self, sources: Vec<S>) -> CombinedStats {
        self.run_phase(sources.into_iter().map(BufferedRequests::new).collect())
    }

    /// Snapshot of every channel's current statistics window.
    #[must_use]
    pub fn stats(&self) -> CombinedStats {
        CombinedStats::new(self.controllers.iter().map(|c| c.stats().clone()).collect())
    }

    /// Resets every channel's statistics window (bank and queue state are
    /// preserved, so a write phase can be followed by a measured read
    /// phase).
    pub fn reset_stats(&mut self) {
        for controller in &mut self.controllers {
            controller.reset_stats();
        }
    }
}

/// Drives one channel to completion: the per-channel projection of the
/// sequential [`ChannelRouter::run_phase`] loop.
///
/// Equivalence argument (pinned by `tests/parallel_differential.rs`): in the
/// sequential loop a channel is refilled at the top of every outer
/// iteration, but a refill only admits requests when the channel's own
/// stepping freed queue slots — for every other channel the pass is a no-op
/// (its queue is still full, or its trace is exhausted).  Projected onto one
/// channel the sequential schedule is therefore exactly
/// `fill, (burst-until-accepting, fill)*, drain`, which is what this loop
/// executes.  The loop exits when a fill leaves the channel with no pending
/// work, which in the sequential loop is exactly when the channel drops out
/// of the laggard candidate set for good.
fn drive_channel<I: Iterator<Item = Request>>(controller: &mut Controller, trace: I) {
    let mut trace = trace.fuse();
    loop {
        let mut free = controller.free_slots();
        while free > 0 {
            match trace.next() {
                Some(request) => {
                    let accepted = controller.enqueue(request);
                    debug_assert!(accepted, "enqueue within free_slots cannot fail");
                    free -= 1;
                }
                None => break,
            }
        }
        if controller.pending_requests() == 0 {
            break;
        }
        controller.step();
        while !controller.can_accept() && controller.pending_requests() > 0 {
            controller.step();
        }
    }
    controller.drain();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ChannelTopology;
    use crate::sim::MemorySystem;
    use crate::standards::DramStandard;

    fn config(channels: u32, ranks: u32) -> DramConfig {
        DramConfig::preset(DramStandard::Ddr4, 3200)
            .unwrap()
            .with_topology(ChannelTopology::new(channels, ranks))
    }

    fn sequential(config: &DramConfig, n: u64) -> impl Iterator<Item = Request> + '_ {
        (0..n).map(|i| Request::write(config.decode_linear(i)))
    }

    #[test]
    fn single_channel_router_matches_memory_system_bit_exactly() {
        let cfg = config(1, 1);
        let n = 20_000u64;
        let mut router = ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
        let combined = router.run_phase(vec![sequential(&cfg, n)]);
        let mut system = MemorySystem::new(cfg.clone()).unwrap();
        let reference = system.run_trace(sequential(&cfg, n));
        assert_eq!(combined.per_channel(), std::slice::from_ref(&reference));
        assert_eq!(combined.aggregate(), reference);
    }

    #[test]
    fn two_channels_double_completed_work_at_similar_elapsed_time() {
        let n = 20_000u64;
        let single_cfg = config(1, 1);
        let mut single =
            ChannelRouter::new(single_cfg.clone(), ControllerConfig::default()).unwrap();
        let single_stats = single.run_phase(vec![sequential(&single_cfg, n)]);

        let dual_cfg = config(2, 1);
        let mut dual = ChannelRouter::new(dual_cfg.clone(), ControllerConfig::default()).unwrap();
        let dual_stats = dual.run_phase(vec![sequential(&dual_cfg, n), sequential(&dual_cfg, n)]);

        assert_eq!(
            dual_stats.aggregate().completed_requests,
            2 * single_stats.aggregate().completed_requests
        );
        // Each channel runs the same stream, so the (max) elapsed time stays
        // flat and the aggregate bandwidth doubles.
        assert_eq!(
            dual_stats.aggregate().elapsed_cycles,
            single_stats.aggregate().elapsed_cycles
        );
        let single_bw = single_stats.aggregate_bandwidth_gbps(single_cfg.clock_mhz(), 64);
        let dual_bw = dual_stats.aggregate_bandwidth_gbps(dual_cfg.clock_mhz(), 64);
        assert!(
            dual_bw > 1.95 * single_bw,
            "aggregate bandwidth should double: {single_bw} vs {dual_bw}"
        );
        assert_eq!(dual_stats.utilization_spread(), 0.0);
    }

    #[test]
    fn run_phase_sources_matches_run_phase_bit_exactly() {
        use crate::request::IteratorSource;
        let cfg = config(2, 1);
        let n = 10_000u64;
        let mut scalar = ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
        let scalar_stats = scalar.run_phase(vec![sequential(&cfg, n), sequential(&cfg, n / 2)]);
        let mut batched = ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
        let batched_stats = batched.run_phase_sources(vec![
            IteratorSource(sequential(&cfg, n)),
            IteratorSource(sequential(&cfg, n / 2)),
        ]);
        assert_eq!(scalar_stats, batched_stats);
    }

    #[test]
    fn per_channel_stats_are_independent_of_sibling_traffic() {
        // Channel 0 gets the same stream in both runs; channel 1's load must
        // not change channel 0's statistics.
        let cfg = config(2, 1);
        let n = 8_000u64;
        let run = |sibling: u64| {
            let mut router = ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
            let traces: Vec<Box<dyn Iterator<Item = Request>>> = vec![
                Box::new(sequential(&cfg, n)),
                Box::new(sequential(&cfg, sibling)),
            ];
            router.run_phase(traces).per_channel()[0].clone()
        };
        assert_eq!(run(0), run(3 * n));
    }

    #[test]
    fn dual_rank_channel_completes_and_pays_rank_switches() {
        // Two bus-saturating streams that rotate bank groups identically;
        // one stays on rank 0, the other also flips the rank every access
        // and must pay the tRTRS bubble on top, while still completing
        // everything.
        use crate::address::PhysicalAddress;
        let cfg = config(1, 2);
        let n = 400u64;
        let addr = |i: u64, alternate: bool| {
            let rank = if alternate { (i % 2) as u32 } else { 0 };
            PhysicalAddress::new((i % 4) as u32, 0, 0, (i / 4) as u32).with_rank(rank)
        };
        let run = |alternate: bool| {
            let mut router = ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
            router
                .run_phase(vec![(0..n).map(move |i| Request::write(addr(i, alternate)))])
                .aggregate()
        };
        let same = run(false);
        let alternating = run(true);
        assert_eq!(same.completed_requests, n);
        assert_eq!(alternating.completed_requests, n);
        assert!(
            alternating.elapsed_cycles > same.elapsed_cycles,
            "rank alternation must pay switch bubbles: {} vs {}",
            alternating.elapsed_cycles,
            same.elapsed_cycles
        );
    }

    #[test]
    fn empty_combined_stats_are_zero() {
        let empty = CombinedStats::default();
        assert_eq!(empty.utilization(), 0.0);
        assert_eq!(empty.utilization_spread(), 0.0);
        assert_eq!(empty.aggregate(), Stats::new());
    }

    #[test]
    fn single_channel_combined_stats_are_the_channel_stats() {
        let mut stats = Stats::new();
        stats.elapsed_cycles = 500;
        stats.data_bus_busy_cycles = 400;
        stats.completed_requests = 100;
        let combined = CombinedStats::new(vec![stats.clone()]);
        assert_eq!(combined.aggregate(), stats);
        assert_eq!(combined.utilization_spread(), 0.0);
        assert!((combined.utilization() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_traffic_channels_never_produce_nan() {
        // An idle channel (zero elapsed cycles) next to a busy one: every
        // derived metric must stay finite, with the idle channel counting as
        // utilization 0.
        let mut busy = Stats::new();
        busy.elapsed_cycles = 200;
        busy.data_bus_busy_cycles = 150;
        let combined = CombinedStats::new(vec![busy, Stats::new()]);
        assert!(combined.utilization().is_finite());
        assert!((combined.utilization() - 150.0 / 400.0).abs() < 1e-12);
        assert!((combined.utilization_spread() - 0.75).abs() < 1e-12);
        assert!(combined.aggregate_bandwidth_gbps(1600.0, 64).is_finite());
        assert_eq!(combined.aggregate().elapsed_cycles, 200);

        // All channels idle: everything is exactly zero.
        let idle = CombinedStats::new(vec![Stats::new(), Stats::new()]);
        assert_eq!(idle.utilization(), 0.0);
        assert_eq!(idle.utilization_spread(), 0.0);
        assert_eq!(idle.aggregate_bandwidth_gbps(1600.0, 64), 0.0);
    }

    #[test]
    fn combined_stats_reduction_is_order_independent() {
        // The aggregate/utilization/spread reductions use only commutative,
        // associative operations (sums, max, min), so any permutation of the
        // per-channel entries yields identical derived metrics.  This is the
        // property that makes the threaded drive mode safe: it never matters
        // which worker finishes first, only that `stats()` assembles the
        // vector in channel order.
        let mut a = Stats::new();
        a.elapsed_cycles = 120;
        a.data_bus_busy_cycles = 84;
        a.completed_requests = 7;
        let mut b = Stats::new();
        b.elapsed_cycles = 100;
        b.data_bus_busy_cycles = 90;
        b.row_hits = 3;
        let mut c = Stats::new();
        c.elapsed_cycles = 50;
        c.data_bus_busy_cycles = 10;
        c.stall_cycles = 5;
        let reference = CombinedStats::new(vec![a.clone(), b.clone(), c.clone()]);
        let permutations = [
            vec![a.clone(), c.clone(), b.clone()],
            vec![b.clone(), a.clone(), c.clone()],
            vec![b.clone(), c.clone(), a.clone()],
            vec![c.clone(), a.clone(), b.clone()],
            vec![c, b, a],
        ];
        for permuted in permutations {
            let combined = CombinedStats::new(permuted);
            assert_eq!(combined.aggregate(), reference.aggregate());
            assert_eq!(combined.utilization(), reference.utilization());
            assert_eq!(
                combined.utilization_spread(),
                reference.utilization_spread()
            );
            assert_eq!(
                combined.aggregate_bandwidth_gbps(1600.0, 64),
                reference.aggregate_bandwidth_gbps(1600.0, 64)
            );
        }
    }

    #[test]
    fn threaded_run_phase_is_bit_identical_for_any_thread_count() {
        // Four channels with deliberately unbalanced streams; every thread
        // count (including one that does not divide the channel count) must
        // reproduce the sequential CombinedStats bit-exactly.
        let cfg = config(4, 1);
        let lengths = [9_000u64, 500, 4_321, 7];
        let traces = |cfg: &DramConfig| -> Vec<_> {
            lengths
                .iter()
                .map(|&n| {
                    let cfg = cfg.clone();
                    (0..n).map(move |i| Request::write(cfg.decode_linear(i)))
                })
                .collect()
        };
        let mut sequential = ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
        let reference = sequential.run_phase(traces(&cfg));
        for threads in [1usize, 2, 3, 4, 16] {
            let mut threaded =
                ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
            let stats = threaded.run_phase_threaded(traces(&cfg), threads);
            assert_eq!(stats, reference, "threads={threads}");
        }
    }

    #[test]
    fn threaded_run_phase_preserves_completion_log_ordering() {
        // With completion logging on, the per-channel completion logs (the
        // per-request ordering the stream scheduler observes) must match the
        // sequential path exactly, channel by channel.
        let cfg = config(2, 1);
        let n = 3_000u64;
        let run = |threads: Option<usize>| {
            let mut router = ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
            for channel in 0..2 {
                router.controller_mut(channel).set_completion_logging(true);
            }
            let traces = vec![
                Box::new(sequential(&cfg, n)) as Box<dyn Iterator<Item = Request> + Send>,
                Box::new(sequential(&cfg, n / 3)),
            ];
            let stats = match threads {
                None => router.run_phase(traces),
                Some(t) => router.run_phase_threaded(traces, t),
            };
            let logs: Vec<Vec<_>> = (0..2)
                .map(|c| router.controller_mut(c).drain_completions().collect())
                .collect();
            (stats, logs)
        };
        let (reference_stats, reference_logs) = run(None);
        for threads in [1usize, 2, 5] {
            let (stats, logs) = run(Some(threads));
            assert_eq!(stats, reference_stats, "threads={threads}");
            assert_eq!(logs, reference_logs, "threads={threads}");
        }
    }

    #[test]
    fn drain_all_threaded_matches_sequential_drain() {
        // Partially-filled queues drained in parallel must finalize exactly
        // the same per-channel windows as channel-order drains.
        let cfg = config(4, 1);
        let build = || {
            let mut router = ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
            for channel in 0..4u32 {
                for i in 0..(16 * (u64::from(channel) + 1)) {
                    router.enqueue(channel, Request::write(cfg.decode_linear(i)));
                }
            }
            router
        };
        let mut reference = build();
        reference.drain_all(1);
        for threads in [2usize, 3, 4] {
            let mut threaded = build();
            threaded.drain_all(threads);
            assert_eq!(threaded.stats(), reference.stats(), "threads={threads}");
        }
    }

    #[test]
    fn completion_logging_is_observational_and_complete() {
        let cfg = config(1, 1);
        let n = 5_000u64;
        let mut plain = ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
        let plain_stats = plain.run_phase(vec![sequential(&cfg, n)]);

        let mut logged = ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
        logged.controller_mut(0).set_completion_logging(true);
        let logged_stats = logged.run_phase(vec![sequential(&cfg, n)]);
        assert_eq!(plain_stats, logged_stats, "logging must not perturb timing");

        let completions: Vec<_> = logged.controller_mut(0).drain_completions().collect();
        assert_eq!(completions.len() as u64, n);
        let geometry = cfg.geometry;
        let flat_banks = geometry.total_banks();
        for completion in &completions {
            assert!(completion.flat_bank < flat_banks);
            assert!(completion.data_end > 0);
        }
        // The log drains destructively.
        assert_eq!(logged.controller_mut(0).drain_completions().count(), 0);
    }

    /// Truncates an inner source after `limit` requests and then reports
    /// exhaustion (`fill` returning 0) even though the inner source could
    /// continue — the mid-phase cut-off of the exhaustion-semantics tests.
    struct TruncatedSource<S> {
        inner: S,
        limit: usize,
    }

    impl<S: RequestSource> RequestSource for TruncatedSource<S> {
        fn fill(&mut self, out: &mut Vec<Request>, max: usize) -> usize {
            if self.limit == 0 {
                return 0;
            }
            let before = out.len();
            let take = self.limit.min(max);
            self.inner.fill(out, take);
            out.truncate(before + self.limit.min(out.len() - before));
            let appended = out.len() - before;
            self.limit -= appended;
            appended
        }
    }

    #[test]
    fn mid_phase_source_exhaustion_terminates_and_matches_iterator_path() {
        use crate::request::IteratorSource;
        // One channel's source dries up mid-phase (fill returns 0 after 1000
        // requests while the sibling channel still has work): the run must
        // terminate cleanly and stay bit-identical to scalar iterators
        // truncated at the same point.
        let cfg = config(2, 1);
        let n = 6_000u64;
        let cut = 1_000usize;
        let mut scalar = ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
        let scalar_stats = scalar.run_phase(vec![
            Box::new(sequential(&cfg, n)) as Box<dyn Iterator<Item = Request>>,
            Box::new(sequential(&cfg, n).take(cut)),
        ]);
        let mut batched = ChannelRouter::new(cfg.clone(), ControllerConfig::default()).unwrap();
        let batched_stats = batched.run_phase_sources(vec![
            TruncatedSource {
                inner: IteratorSource(sequential(&cfg, n)),
                limit: usize::MAX,
            },
            TruncatedSource {
                inner: IteratorSource(sequential(&cfg, n)),
                limit: cut,
            },
        ]);
        assert_eq!(scalar_stats, batched_stats);
        assert_eq!(
            batched_stats.per_channel()[1].completed_requests,
            cut as u64
        );
    }
}
