//! DRAM timing parameters.
//!
//! All values are expressed in **device clock cycles** (the memory clock, i.e.
//! half the data rate in MT/s).  The presets in [`crate::standards`] convert
//! nanosecond datasheet values to cycles for each speed grade.

use crate::error::ConfigError;

/// The set of JEDEC timing constraints enforced by the controller model.
///
/// Only the constraints that influence sustained bandwidth for streaming
/// read/write patterns are modelled; initialisation, calibration, power-down
/// and self-refresh timings are out of scope.
///
/// # Examples
///
/// ```
/// use tbi_dram::{DramConfig, DramStandard};
///
/// # fn main() -> Result<(), tbi_dram::ConfigError> {
/// let cfg = DramConfig::preset(DramStandard::Ddr4, 3200)?;
/// // The bank-group penalty: consecutive column commands to the same bank
/// // group must be spaced further apart than commands to different groups.
/// assert!(cfg.timing.t_ccd_l >= cfg.timing.t_ccd_s);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimingParams {
    /// CAS read latency (RL): clock cycles from RD command to first data beat.
    pub cl: u64,
    /// CAS write latency (WL/CWL): cycles from WR command to first data beat.
    pub cwl: u64,
    /// ACT to internal read/write delay.
    pub t_rcd: u64,
    /// PRE to ACT delay on the same bank.
    pub t_rp: u64,
    /// ACT to PRE minimum delay on the same bank.
    pub t_ras: u64,
    /// ACT to ACT minimum delay on the same bank (>= `t_ras + t_rp`).
    pub t_rc: u64,
    /// ACT to ACT delay, different banks, **different** bank groups.
    pub t_rrd_s: u64,
    /// ACT to ACT delay, different banks, **same** bank group.
    pub t_rrd_l: u64,
    /// Four-activate window: at most four ACT commands per `t_faw` cycles.
    pub t_faw: u64,
    /// Column command to column command delay, **different** bank groups.
    pub t_ccd_s: u64,
    /// Column command to column command delay, **same** bank group.
    pub t_ccd_l: u64,
    /// Write recovery time: last write data beat to PRE on the same bank.
    pub t_wr: u64,
    /// Write-to-read turnaround, different bank groups.
    pub t_wtr_s: u64,
    /// Write-to-read turnaround, same bank group.
    pub t_wtr_l: u64,
    /// Read to PRE delay on the same bank.
    pub t_rtp: u64,
    /// All-bank refresh cycle time (REFab busy time).
    pub t_rfc_ab: u64,
    /// Per-bank refresh cycle time (REFpb busy time); 0 if unsupported.
    pub t_rfc_pb: u64,
    /// Average refresh interval.
    pub t_refi: u64,
    /// Extra data-bus idle cycles inserted when the bus switches between
    /// reads and writes (DQ turnaround bubble).
    pub t_bus_turn: u64,
    /// Extra data-bus idle cycles inserted when consecutive data bursts on
    /// one channel come from **different ranks** (tRTRS-style rank-to-rank
    /// switch bubble: the outgoing rank must release the bus before the
    /// incoming rank may drive it).  Never applies on single-rank channels,
    /// so the Table I results are unaffected by its value.
    pub t_rank_to_rank: u64,
}

impl TimingParams {
    /// Validates internal consistency of the timing set.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidTiming`] when a derived relationship is
    /// violated (for example `t_rc < t_ras + t_rp`, or a "long" constraint
    /// being shorter than its "short" counterpart).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(ConfigError::InvalidTiming {
                field: "t_rc",
                reason: format!(
                    "t_rc ({}) must be >= t_ras + t_rp ({})",
                    self.t_rc,
                    self.t_ras + self.t_rp
                ),
            });
        }
        if self.t_ccd_l < self.t_ccd_s {
            return Err(ConfigError::InvalidTiming {
                field: "t_ccd_l",
                reason: "t_ccd_l must be >= t_ccd_s".to_string(),
            });
        }
        if self.t_rrd_l < self.t_rrd_s {
            return Err(ConfigError::InvalidTiming {
                field: "t_rrd_l",
                reason: "t_rrd_l must be >= t_rrd_s".to_string(),
            });
        }
        if self.t_wtr_l < self.t_wtr_s {
            return Err(ConfigError::InvalidTiming {
                field: "t_wtr_l",
                reason: "t_wtr_l must be >= t_wtr_s".to_string(),
            });
        }
        if self.t_faw < self.t_rrd_s {
            return Err(ConfigError::InvalidTiming {
                field: "t_faw",
                reason: "t_faw must be >= t_rrd_s".to_string(),
            });
        }
        if self.t_refi > 0 && self.t_rfc_ab >= self.t_refi {
            return Err(ConfigError::InvalidTiming {
                field: "t_rfc_ab",
                reason: "t_rfc_ab must be smaller than t_refi".to_string(),
            });
        }
        for (field, value) in [
            ("cl", self.cl),
            ("cwl", self.cwl),
            ("t_rcd", self.t_rcd),
            ("t_rp", self.t_rp),
            ("t_ras", self.t_ras),
            ("t_ccd_s", self.t_ccd_s),
        ] {
            if value == 0 {
                return Err(ConfigError::InvalidTiming {
                    field,
                    reason: "must be non-zero".to_string(),
                });
            }
        }
        Ok(())
    }

    /// The row-miss penalty `t_rp + t_rcd`: cycles needed to close one row and
    /// open another on the same bank, excluding any overlap with other banks.
    #[must_use]
    pub fn row_miss_penalty(&self) -> u64 {
        self.t_rp + self.t_rcd
    }

    // ----------------------------------------------------------------- //
    // Earliest-ready-cycle queries
    //
    // The event-driven engine never polls "can I issue now?" cycle by
    // cycle; instead it asks the timing table directly for the earliest
    // cycle at which a follow-up command satisfies each constraint and
    // jumps the clock there.  These helpers answer those queries.
    // ----------------------------------------------------------------- //

    /// Minimum spacing between two column (RD/WR) commands, depending on
    /// whether both target the **same bank group** (`t_ccd_l`) or different
    /// ones (`t_ccd_s`).
    #[must_use]
    pub fn ccd(&self, same_bank_group: bool) -> u64 {
        if same_bank_group {
            self.t_ccd_l
        } else {
            self.t_ccd_s
        }
    }

    /// Minimum spacing between two ACT commands to different banks,
    /// depending on whether both target the **same bank group** (`t_rrd_l`)
    /// or different ones (`t_rrd_s`).
    #[must_use]
    pub fn rrd(&self, same_bank_group: bool) -> u64 {
        if same_bank_group {
            self.t_rrd_l
        } else {
            self.t_rrd_s
        }
    }

    /// Write-to-read turnaround measured from the last write data beat,
    /// depending on whether the read targets the **same bank group**
    /// (`t_wtr_l`) or a different one (`t_wtr_s`).
    #[must_use]
    pub fn wtr(&self, same_bank_group: bool) -> u64 {
        if same_bank_group {
            self.t_wtr_l
        } else {
            self.t_wtr_s
        }
    }

    /// Command-to-first-data-beat latency of a column command (`cwl` for
    /// writes, `cl` for reads).
    #[must_use]
    pub fn column_latency(&self, is_write: bool) -> u64 {
        if is_write {
            self.cwl
        } else {
            self.cl
        }
    }

    /// Earliest cycle a column command may follow a column command issued at
    /// `last_column_at`.
    #[must_use]
    pub fn column_ready_after_column(&self, last_column_at: u64, same_bank_group: bool) -> u64 {
        last_column_at + self.ccd(same_bank_group)
    }

    /// Earliest cycle a read command may follow a write whose **data** ended
    /// at `write_data_end`.
    #[must_use]
    pub fn read_ready_after_write_data(&self, write_data_end: u64, same_bank_group: bool) -> u64 {
        write_data_end + self.wtr(same_bank_group)
    }

    /// Earliest cycle an ACT command may follow an ACT issued at
    /// `last_act_at` on a *different* bank.
    #[must_use]
    pub fn act_ready_after_act(&self, last_act_at: u64, same_bank_group: bool) -> u64 {
        last_act_at + self.rrd(same_bank_group)
    }

    /// Earliest cycle a fifth ACT may follow the ACT that opened the current
    /// four-activate window at `fourth_last_act_at`.
    #[must_use]
    pub fn act_ready_after_faw(&self, fourth_last_act_at: u64) -> u64 {
        fourth_last_act_at + self.t_faw
    }
}

/// Converts a nanosecond datasheet value to clock cycles at `clock_mhz`,
/// rounding up as JEDEC requires.
#[must_use]
pub fn ns_to_cycles(ns: f64, clock_mhz: f64) -> u64 {
    let cycles = ns * clock_mhz / 1000.0;
    // Guard against floating point representation of exact multiples.
    let rounded = cycles.ceil();
    if (cycles - cycles.round()).abs() < 1e-9 {
        cycles.round() as u64
    } else {
        rounded as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standards::{DramConfig, DramStandard};

    #[test]
    fn ns_conversion_rounds_up() {
        // 13.75 ns at 800 MHz = 11 cycles exactly.
        assert_eq!(ns_to_cycles(13.75, 800.0), 11);
        // 13.76 ns at 800 MHz = 11.008 -> 12 cycles.
        assert_eq!(ns_to_cycles(13.76, 800.0), 12);
        // exact multiples are not inflated
        assert_eq!(ns_to_cycles(10.0, 400.0), 4);
        assert_eq!(ns_to_cycles(0.0, 800.0), 0);
    }

    #[test]
    fn presets_validate() {
        for (standard, rate) in crate::standards::ALL_CONFIGS {
            let cfg = DramConfig::preset(*standard, *rate).expect("preset exists");
            cfg.timing.validate().unwrap_or_else(|e| {
                panic!("timing for {standard:?}-{rate} invalid: {e}");
            });
        }
    }

    #[test]
    fn validate_rejects_rc_smaller_than_ras_plus_rp() {
        let mut t = DramConfig::preset(DramStandard::Ddr4, 1600).unwrap().timing;
        t.t_rc = t.t_ras; // too small
        assert!(matches!(
            t.validate(),
            Err(ConfigError::InvalidTiming { field: "t_rc", .. })
        ));
    }

    #[test]
    fn validate_rejects_short_longer_than_long() {
        let mut t = DramConfig::preset(DramStandard::Ddr4, 1600).unwrap().timing;
        t.t_ccd_s = t.t_ccd_l + 1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn row_miss_penalty_is_rp_plus_rcd() {
        let t = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap().timing;
        assert_eq!(t.row_miss_penalty(), t.t_rp + t.t_rcd);
    }
}
