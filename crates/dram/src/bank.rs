//! Per-bank state machine and timing bookkeeping.

use crate::timing::TimingParams;

/// Flat bank identifier: `bank_group * banks_per_group + bank`.
///
/// # Examples
///
/// ```
/// use tbi_dram::BankId;
///
/// let id = BankId::from_parts(2, 3, 4); // bank group 2, bank 3, 4 banks per group
/// assert_eq!(id.index(), 11);
/// assert_eq!(id.bank_group(4), 2);
/// assert_eq!(id.bank_in_group(4), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BankId(pub u32);

impl BankId {
    /// Builds a flat bank id from bank group, bank and the number of banks
    /// per group.
    #[must_use]
    pub fn from_parts(bank_group: u32, bank: u32, banks_per_group: u32) -> Self {
        BankId(bank_group * banks_per_group + bank)
    }

    /// The flat index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }

    /// The bank group this bank belongs to.
    #[must_use]
    pub fn bank_group(self, banks_per_group: u32) -> u32 {
        self.0 / banks_per_group
    }

    /// The bank index within its bank group.
    #[must_use]
    pub fn bank_in_group(self, banks_per_group: u32) -> u32 {
        self.0 % banks_per_group
    }
}

/// State of one DRAM bank: the open row (if any) plus the earliest cycle at
/// which the next activate, column or precharge command may be issued.
///
/// The controller uses these "earliest issue" registers instead of an explicit
/// state enum; a bank is *idle* when [`BankState::open_row`] is `None` and
/// *active* otherwise.  All transition methods take the current cycle and the
/// timing parameter set and update the registers according to JEDEC rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankState {
    /// The currently open row, or `None` if the bank is precharged.
    pub open_row: Option<u32>,
    /// Earliest cycle an ACT command may be issued to this bank.
    pub act_allowed_at: u64,
    /// Earliest cycle a RD/WR command may be issued to this bank.
    pub col_allowed_at: u64,
    /// Earliest cycle a PRE command may be issued to this bank.
    pub pre_allowed_at: u64,
    /// Number of activates seen by this bank (statistics).
    pub activate_count: u64,
}

impl Default for BankState {
    fn default() -> Self {
        Self::new()
    }
}

impl BankState {
    /// Creates a bank in the precharged (idle) state with no timing debts.
    #[must_use]
    pub fn new() -> Self {
        Self {
            open_row: None,
            act_allowed_at: 0,
            col_allowed_at: 0,
            pre_allowed_at: 0,
            activate_count: 0,
        }
    }

    /// Whether the bank currently has `row` open.
    #[must_use]
    pub fn is_row_open(&self, row: u32) -> bool {
        self.open_row == Some(row)
    }

    /// Whether the bank is precharged (no open row).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.open_row.is_none()
    }

    /// Records an ACT command issued at `now` opening `row`.
    pub fn record_activate(&mut self, now: u64, row: u32, t: &TimingParams) {
        debug_assert!(self.open_row.is_none(), "activate on an active bank");
        debug_assert!(now >= self.act_allowed_at, "activate issued too early");
        self.open_row = Some(row);
        self.col_allowed_at = now + t.t_rcd;
        self.pre_allowed_at = self.pre_allowed_at.max(now + t.t_ras);
        self.act_allowed_at = self.act_allowed_at.max(now + t.t_rc);
        self.activate_count += 1;
    }

    /// Records a PRE command issued at `now`.
    pub fn record_precharge(&mut self, now: u64, t: &TimingParams) {
        debug_assert!(now >= self.pre_allowed_at, "precharge issued too early");
        self.open_row = None;
        self.act_allowed_at = self.act_allowed_at.max(now + t.t_rp);
    }

    /// Records a RD command issued at `now` (burst of `burst_cycles`).
    pub fn record_read(&mut self, now: u64, burst_cycles: u64, t: &TimingParams) {
        debug_assert!(self.open_row.is_some(), "read on an idle bank");
        debug_assert!(now >= self.col_allowed_at, "read issued too early");
        let _ = burst_cycles;
        self.pre_allowed_at = self.pre_allowed_at.max(now + t.t_rtp);
    }

    /// Records a WR command issued at `now` (burst of `burst_cycles`).
    pub fn record_write(&mut self, now: u64, burst_cycles: u64, t: &TimingParams) {
        debug_assert!(self.open_row.is_some(), "write on an idle bank");
        debug_assert!(now >= self.col_allowed_at, "write issued too early");
        // Write recovery starts after the last data beat.
        self.pre_allowed_at = self.pre_allowed_at.max(now + t.cwl + burst_cycles + t.t_wr);
    }

    /// Records a refresh (all-bank or per-bank) that keeps this bank busy for
    /// `busy_cycles` starting at `now`.
    pub fn record_refresh(&mut self, now: u64, busy_cycles: u64) {
        debug_assert!(self.open_row.is_none(), "refresh on an active bank");
        self.act_allowed_at = self.act_allowed_at.max(now + busy_cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standards::{DramConfig, DramStandard};

    fn timing() -> TimingParams {
        DramConfig::preset(DramStandard::Ddr4, 3200).unwrap().timing
    }

    #[test]
    fn bank_id_round_trip() {
        for bg in 0..4 {
            for b in 0..4 {
                let id = BankId::from_parts(bg, b, 4);
                assert_eq!(id.bank_group(4), bg);
                assert_eq!(id.bank_in_group(4), b);
            }
        }
    }

    #[test]
    fn new_bank_is_idle() {
        let b = BankState::new();
        assert!(b.is_idle());
        assert!(!b.is_row_open(0));
        assert_eq!(b.act_allowed_at, 0);
    }

    #[test]
    fn activate_opens_row_and_sets_timings() {
        let t = timing();
        let mut b = BankState::new();
        b.record_activate(100, 42, &t);
        assert!(b.is_row_open(42));
        assert!(!b.is_row_open(43));
        assert_eq!(b.col_allowed_at, 100 + t.t_rcd);
        assert_eq!(b.pre_allowed_at, 100 + t.t_ras);
        assert_eq!(b.act_allowed_at, 100 + t.t_rc);
        assert_eq!(b.activate_count, 1);
    }

    #[test]
    fn precharge_closes_row_and_blocks_activate_for_trp() {
        let t = timing();
        let mut b = BankState::new();
        b.record_activate(0, 7, &t);
        let pre_time = b.pre_allowed_at;
        b.record_precharge(pre_time, &t);
        assert!(b.is_idle());
        assert!(b.act_allowed_at >= pre_time + t.t_rp);
    }

    #[test]
    fn write_extends_precharge_beyond_read() {
        let t = timing();
        let mut rd_bank = BankState::new();
        let mut wr_bank = BankState::new();
        rd_bank.record_activate(0, 1, &t);
        wr_bank.record_activate(0, 1, &t);
        let when = rd_bank.col_allowed_at;
        rd_bank.record_read(when, 4, &t);
        wr_bank.record_write(when, 4, &t);
        assert!(
            wr_bank.pre_allowed_at > rd_bank.pre_allowed_at,
            "write recovery must delay precharge more than read-to-precharge"
        );
    }

    #[test]
    fn refresh_blocks_activation() {
        let t = timing();
        let mut b = BankState::new();
        b.record_refresh(50, t.t_rfc_ab);
        assert_eq!(b.act_allowed_at, 50 + t.t_rfc_ab);
    }
}
