//! Per-bank state machine and timing bookkeeping.

use crate::timing::TimingParams;

/// Flat bank identifier: `bank_group * banks_per_group + bank`.
///
/// # Examples
///
/// ```
/// use tbi_dram::BankId;
///
/// let id = BankId::from_parts(2, 3, 4); // bank group 2, bank 3, 4 banks per group
/// assert_eq!(id.index(), 11);
/// assert_eq!(id.bank_group(4), 2);
/// assert_eq!(id.bank_in_group(4), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BankId(pub u32);

impl BankId {
    /// Builds a flat bank id from bank group, bank and the number of banks
    /// per group.
    #[must_use]
    pub fn from_parts(bank_group: u32, bank: u32, banks_per_group: u32) -> Self {
        BankId(bank_group * banks_per_group + bank)
    }

    /// The flat index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }

    /// The bank group this bank belongs to.
    #[must_use]
    pub fn bank_group(self, banks_per_group: u32) -> u32 {
        self.0 / banks_per_group
    }

    /// The bank index within its bank group.
    #[must_use]
    pub fn bank_in_group(self, banks_per_group: u32) -> u32 {
        self.0 % banks_per_group
    }
}

/// State of one DRAM bank: the open row (if any) plus the earliest cycle at
/// which the next activate, column or precharge command may be issued.
///
/// The controller uses these "earliest issue" registers instead of an explicit
/// state enum; a bank is *idle* when [`BankState::open_row`] is `None` and
/// *active* otherwise.  All transition methods take the current cycle and the
/// timing parameter set and update the registers according to JEDEC rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankState {
    /// The currently open row, or `None` if the bank is precharged.
    pub open_row: Option<u32>,
    /// Earliest cycle an ACT command may be issued to this bank.
    pub act_allowed_at: u64,
    /// Earliest cycle a RD/WR command may be issued to this bank.
    pub col_allowed_at: u64,
    /// Earliest cycle a PRE command may be issued to this bank.
    pub pre_allowed_at: u64,
    /// Number of activates seen by this bank (statistics).
    pub activate_count: u64,
}

impl Default for BankState {
    fn default() -> Self {
        Self::new()
    }
}

impl BankState {
    /// Creates a bank in the precharged (idle) state with no timing debts.
    #[must_use]
    pub fn new() -> Self {
        Self {
            open_row: None,
            act_allowed_at: 0,
            col_allowed_at: 0,
            pre_allowed_at: 0,
            activate_count: 0,
        }
    }

    /// Whether the bank currently has `row` open.
    #[must_use]
    pub fn is_row_open(&self, row: u32) -> bool {
        self.open_row == Some(row)
    }

    /// Whether the bank is precharged (no open row).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.open_row.is_none()
    }

    /// Records an ACT command issued at `now` opening `row`.
    pub fn record_activate(&mut self, now: u64, row: u32, t: &TimingParams) {
        debug_assert!(self.open_row.is_none(), "activate on an active bank");
        debug_assert!(now >= self.act_allowed_at, "activate issued too early");
        self.open_row = Some(row);
        self.col_allowed_at = now + t.t_rcd;
        self.pre_allowed_at = self.pre_allowed_at.max(now + t.t_ras);
        self.act_allowed_at = self.act_allowed_at.max(now + t.t_rc);
        self.activate_count += 1;
    }

    /// Records a PRE command issued at `now`.
    pub fn record_precharge(&mut self, now: u64, t: &TimingParams) {
        debug_assert!(now >= self.pre_allowed_at, "precharge issued too early");
        self.open_row = None;
        self.act_allowed_at = self.act_allowed_at.max(now + t.t_rp);
    }

    /// Records a RD command issued at `now` (burst of `burst_cycles`).
    pub fn record_read(&mut self, now: u64, burst_cycles: u64, t: &TimingParams) {
        debug_assert!(self.open_row.is_some(), "read on an idle bank");
        debug_assert!(now >= self.col_allowed_at, "read issued too early");
        let _ = burst_cycles;
        self.pre_allowed_at = self.pre_allowed_at.max(now + t.t_rtp);
    }

    /// Records a WR command issued at `now` (burst of `burst_cycles`).
    pub fn record_write(&mut self, now: u64, burst_cycles: u64, t: &TimingParams) {
        debug_assert!(self.open_row.is_some(), "write on an idle bank");
        debug_assert!(now >= self.col_allowed_at, "write issued too early");
        // Write recovery starts after the last data beat.
        self.pre_allowed_at = self.pre_allowed_at.max(now + t.cwl + burst_cycles + t.t_wr);
    }

    /// Records a refresh (all-bank or per-bank) that keeps this bank busy for
    /// `busy_cycles` starting at `now`.
    pub fn record_refresh(&mut self, now: u64, busy_cycles: u64) {
        debug_assert!(self.open_row.is_none(), "refresh on an active bank");
        self.act_allowed_at = self.act_allowed_at.max(now + busy_cycles);
    }
}

/// Structure-of-arrays bank state for a whole channel.
///
/// The controller's hottest loops — the event engine's head
/// classification, the all-bank refresh idle scan, the closed-page
/// precharge sweep — each read **one** field of every bank.  Storing the
/// banks as parallel lanes instead of an array of [`BankState`] structs
/// keeps those scans on densely packed cache lines (e.g. the
/// `open_row` lane of a 32-bank channel is two cache lines instead of
/// thirteen).
///
/// The open row is packed as a `u32` lane with [`BankArray::CLOSED`]
/// (`u32::MAX`) marking a precharged bank; JEDEC row counts are far below
/// the sentinel.  All transition methods mirror [`BankState`]'s semantics
/// exactly — a differential unit test pins the equivalence — and
/// [`BankArray::get`] reassembles a by-value [`BankState`] view for
/// inspection APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankArray {
    open_row: Vec<u32>,
    act_allowed_at: Vec<u64>,
    col_allowed_at: Vec<u64>,
    pre_allowed_at: Vec<u64>,
    activate_count: Vec<u64>,
}

impl BankArray {
    /// Sentinel in the `open_row` lane marking a precharged (idle) bank.
    pub const CLOSED: u32 = u32::MAX;

    /// Creates `banks` banks, all precharged with no timing debts.
    #[must_use]
    pub fn new(banks: usize) -> Self {
        Self {
            open_row: vec![Self::CLOSED; banks],
            act_allowed_at: vec![0; banks],
            col_allowed_at: vec![0; banks],
            pre_allowed_at: vec![0; banks],
            activate_count: vec![0; banks],
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.open_row.len()
    }

    /// Whether the array holds no banks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.open_row.is_empty()
    }

    /// Reassembles the full [`BankState`] of bank `i` by value.
    #[must_use]
    pub fn get(&self, i: usize) -> BankState {
        BankState {
            open_row: self.open_row_of(i),
            act_allowed_at: self.act_allowed_at[i],
            col_allowed_at: self.col_allowed_at[i],
            pre_allowed_at: self.pre_allowed_at[i],
            activate_count: self.activate_count[i],
        }
    }

    /// The open row of bank `i`, or `None` when precharged.
    #[must_use]
    pub fn open_row_of(&self, i: usize) -> Option<u32> {
        let row = self.open_row[i];
        (row != Self::CLOSED).then_some(row)
    }

    /// Whether bank `i` currently has `row` open.
    #[must_use]
    pub fn is_row_open(&self, i: usize, row: u32) -> bool {
        debug_assert_ne!(row, Self::CLOSED, "row collides with the CLOSED sentinel");
        self.open_row[i] == row
    }

    /// Whether bank `i` is precharged (no open row).
    #[must_use]
    pub fn is_idle(&self, i: usize) -> bool {
        self.open_row[i] == Self::CLOSED
    }

    /// Whether every bank is precharged (the all-bank refresh gate).
    #[must_use]
    pub fn all_idle(&self) -> bool {
        self.open_row.iter().all(|&row| row == Self::CLOSED)
    }

    /// Earliest cycle an ACT command may be issued to bank `i`.
    #[must_use]
    pub fn act_allowed_at(&self, i: usize) -> u64 {
        self.act_allowed_at[i]
    }

    /// Earliest cycle a RD/WR command may be issued to bank `i`.
    #[must_use]
    pub fn col_allowed_at(&self, i: usize) -> u64 {
        self.col_allowed_at[i]
    }

    /// Earliest cycle a PRE command may be issued to bank `i`.
    #[must_use]
    pub fn pre_allowed_at(&self, i: usize) -> u64 {
        self.pre_allowed_at[i]
    }

    /// Number of activates seen by bank `i`.
    #[must_use]
    pub fn activate_count(&self, i: usize) -> u64 {
        self.activate_count[i]
    }

    /// The maximum `act_allowed_at` across all banks (when any exist) — the
    /// all-bank refresh ready time.
    #[must_use]
    pub fn max_act_allowed_at(&self) -> Option<u64> {
        self.act_allowed_at.iter().copied().max()
    }

    /// Mirror of [`BankState::record_activate`] for bank `i`.
    pub fn record_activate(&mut self, i: usize, now: u64, row: u32, t: &TimingParams) {
        debug_assert!(self.is_idle(i), "activate on an active bank");
        debug_assert!(now >= self.act_allowed_at[i], "activate issued too early");
        debug_assert_ne!(row, Self::CLOSED, "row collides with the CLOSED sentinel");
        self.open_row[i] = row;
        self.col_allowed_at[i] = now + t.t_rcd;
        self.pre_allowed_at[i] = self.pre_allowed_at[i].max(now + t.t_ras);
        self.act_allowed_at[i] = self.act_allowed_at[i].max(now + t.t_rc);
        self.activate_count[i] += 1;
    }

    /// Mirror of [`BankState::record_precharge`] for bank `i`.
    pub fn record_precharge(&mut self, i: usize, now: u64, t: &TimingParams) {
        debug_assert!(now >= self.pre_allowed_at[i], "precharge issued too early");
        self.open_row[i] = Self::CLOSED;
        self.act_allowed_at[i] = self.act_allowed_at[i].max(now + t.t_rp);
    }

    /// Precharges every open bank at `now` (the PREab service path).
    pub fn precharge_all_open(&mut self, now: u64, t: &TimingParams) {
        for i in 0..self.len() {
            if !self.is_idle(i) {
                self.record_precharge(i, now, t);
            }
        }
    }

    /// Mirror of [`BankState::record_read`] for bank `i`.
    pub fn record_read(&mut self, i: usize, now: u64, burst_cycles: u64, t: &TimingParams) {
        debug_assert!(!self.is_idle(i), "read on an idle bank");
        debug_assert!(now >= self.col_allowed_at[i], "read issued too early");
        let _ = burst_cycles;
        self.pre_allowed_at[i] = self.pre_allowed_at[i].max(now + t.t_rtp);
    }

    /// Mirror of [`BankState::record_write`] for bank `i`.
    pub fn record_write(&mut self, i: usize, now: u64, burst_cycles: u64, t: &TimingParams) {
        debug_assert!(!self.is_idle(i), "write on an idle bank");
        debug_assert!(now >= self.col_allowed_at[i], "write issued too early");
        self.pre_allowed_at[i] = self.pre_allowed_at[i].max(now + t.cwl + burst_cycles + t.t_wr);
    }

    /// Mirror of [`BankState::record_refresh`] for bank `i`.
    pub fn record_refresh(&mut self, i: usize, now: u64, busy_cycles: u64) {
        debug_assert!(self.is_idle(i), "refresh on an active bank");
        self.act_allowed_at[i] = self.act_allowed_at[i].max(now + busy_cycles);
    }

    /// Refreshes every bank at `now` (the REFab service path).
    pub fn record_refresh_all(&mut self, now: u64, busy_cycles: u64) {
        for i in 0..self.len() {
            self.record_refresh(i, now, busy_cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standards::{DramConfig, DramStandard};

    fn timing() -> TimingParams {
        DramConfig::preset(DramStandard::Ddr4, 3200).unwrap().timing
    }

    #[test]
    fn bank_id_round_trip() {
        for bg in 0..4 {
            for b in 0..4 {
                let id = BankId::from_parts(bg, b, 4);
                assert_eq!(id.bank_group(4), bg);
                assert_eq!(id.bank_in_group(4), b);
            }
        }
    }

    #[test]
    fn new_bank_is_idle() {
        let b = BankState::new();
        assert!(b.is_idle());
        assert!(!b.is_row_open(0));
        assert_eq!(b.act_allowed_at, 0);
    }

    #[test]
    fn activate_opens_row_and_sets_timings() {
        let t = timing();
        let mut b = BankState::new();
        b.record_activate(100, 42, &t);
        assert!(b.is_row_open(42));
        assert!(!b.is_row_open(43));
        assert_eq!(b.col_allowed_at, 100 + t.t_rcd);
        assert_eq!(b.pre_allowed_at, 100 + t.t_ras);
        assert_eq!(b.act_allowed_at, 100 + t.t_rc);
        assert_eq!(b.activate_count, 1);
    }

    #[test]
    fn precharge_closes_row_and_blocks_activate_for_trp() {
        let t = timing();
        let mut b = BankState::new();
        b.record_activate(0, 7, &t);
        let pre_time = b.pre_allowed_at;
        b.record_precharge(pre_time, &t);
        assert!(b.is_idle());
        assert!(b.act_allowed_at >= pre_time + t.t_rp);
    }

    #[test]
    fn write_extends_precharge_beyond_read() {
        let t = timing();
        let mut rd_bank = BankState::new();
        let mut wr_bank = BankState::new();
        rd_bank.record_activate(0, 1, &t);
        wr_bank.record_activate(0, 1, &t);
        let when = rd_bank.col_allowed_at;
        rd_bank.record_read(when, 4, &t);
        wr_bank.record_write(when, 4, &t);
        assert!(
            wr_bank.pre_allowed_at > rd_bank.pre_allowed_at,
            "write recovery must delay precharge more than read-to-precharge"
        );
    }

    #[test]
    fn refresh_blocks_activation() {
        let t = timing();
        let mut b = BankState::new();
        b.record_refresh(50, t.t_rfc_ab);
        assert_eq!(b.act_allowed_at, 50 + t.t_rfc_ab);
    }

    #[test]
    fn bank_array_mirrors_bank_state_transitions_exactly() {
        // Drive an identical scripted command sequence through the SoA array
        // and a plain Vec<BankState>; every lane must agree after every op.
        let t = timing();
        let banks = 8usize;
        let mut soa = BankArray::new(banks);
        let mut aos: Vec<BankState> = vec![BankState::new(); banks];
        assert_eq!(soa.len(), banks);
        assert!(!soa.is_empty());
        assert!(soa.all_idle());

        let check = |soa: &BankArray, aos: &[BankState], step: &str| {
            for (i, bank) in aos.iter().enumerate() {
                assert_eq!(soa.get(i), *bank, "bank {i} diverged after {step}");
            }
            assert_eq!(
                soa.all_idle(),
                aos.iter().all(BankState::is_idle),
                "all_idle diverged after {step}"
            );
            assert_eq!(
                soa.max_act_allowed_at(),
                aos.iter().map(|b| b.act_allowed_at).max(),
                "max_act_allowed_at diverged after {step}"
            );
        };

        // Deterministic mixed schedule: activate/read/write/precharge across
        // the banks, then the all-bank forms, then a per-bank refresh.
        let mut now = 0u64;
        for i in 0..banks {
            now += 7;
            let row = (i as u32) * 3 + 1;
            soa.record_activate(i, now, row, &t);
            aos[i].record_activate(now, row, &t);
            check(&soa, &aos, "activate");
            assert!(soa.is_row_open(i, row));
            assert_eq!(soa.open_row_of(i), Some(row));
            assert_eq!(soa.activate_count(i), 1);
        }
        for i in 0..banks {
            let when = soa.col_allowed_at(i).max(now);
            if i % 2 == 0 {
                soa.record_read(i, when, 4, &t);
                aos[i].record_read(when, 4, &t);
            } else {
                soa.record_write(i, when, 4, &t);
                aos[i].record_write(when, 4, &t);
            }
            check(&soa, &aos, "column");
        }
        now = (0..banks).map(|i| soa.pre_allowed_at(i)).max().unwrap();
        soa.record_precharge(0, now, &t);
        aos[0].record_precharge(now, &t);
        check(&soa, &aos, "precharge");
        assert!(soa.is_idle(0));

        soa.precharge_all_open(now, &t);
        for bank in aos.iter_mut().filter(|b| !b.is_idle()) {
            bank.record_precharge(now, &t);
        }
        check(&soa, &aos, "precharge-all");
        assert!(soa.all_idle());

        soa.record_refresh_all(now, t.t_rfc_ab);
        for bank in &mut aos {
            bank.record_refresh(now, t.t_rfc_ab);
        }
        check(&soa, &aos, "refresh-all");

        soa.record_refresh(3, now + t.t_rfc_ab, 9);
        aos[3].record_refresh(now + t.t_rfc_ab, 9);
        check(&soa, &aos, "refresh-bank");
    }
}
