//! The user-facing memory system: a thin driver around [`Controller`].

use crate::controller::{Controller, ControllerConfig, TimingEngine};
use crate::energy::{EnergyParams, EnergyReport};
use crate::error::ConfigError;
use crate::request::{BufferedRequests, Request, RequestSource};
use crate::standards::DramConfig;
use crate::stats::Stats;

/// A single-channel DRAM memory system (controller + device).
///
/// `MemorySystem` owns a [`Controller`] and provides convenience methods to
/// push request streams through it and read back bandwidth statistics.
///
/// # Examples
///
/// Stream a saturated sequence of writes through a DDR4-3200 channel:
///
/// ```
/// use tbi_dram::{DramConfig, DramStandard, MemorySystem, Request};
///
/// # fn main() -> Result<(), tbi_dram::ConfigError> {
/// let config = DramConfig::preset(DramStandard::Ddr4, 3200)?;
/// let mut system = MemorySystem::new(config.clone())?;
/// let stats = system.run_trace((0..4096).map(|i| Request::write(config.decode_linear(i))));
/// assert_eq!(stats.completed_requests, 4096);
/// assert!(stats.bus_utilization() > 0.8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    controller: Controller,
}

impl MemorySystem {
    /// Creates a memory system with the default controller configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the DRAM configuration is invalid.
    pub fn new(config: DramConfig) -> Result<Self, ConfigError> {
        Self::with_controller(config, ControllerConfig::default())
    }

    /// Creates a memory system with an explicit controller configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if either configuration is invalid.
    pub fn with_controller(
        config: DramConfig,
        ctrl: ControllerConfig,
    ) -> Result<Self, ConfigError> {
        Ok(Self {
            controller: Controller::new(config, ctrl)?,
        })
    }

    /// The DRAM configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        self.controller.config()
    }

    /// Immutable access to the underlying controller.
    #[must_use]
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Enqueues a request, returning `false` if the controller queue is full.
    pub fn enqueue(&mut self, request: Request) -> bool {
        self.controller.enqueue(request)
    }

    /// The timing engine driving [`Self::run_trace`] /
    /// [`Self::run_to_completion`].
    #[must_use]
    pub fn engine(&self) -> TimingEngine {
        self.controller.controller_config().engine
    }

    /// Advances the simulation by exactly one device clock cycle (the
    /// cycle-accurate reference shim; see [`Controller::tick`]).
    ///
    /// Returns `true` while work remains.
    pub fn tick(&mut self) -> bool {
        self.controller.tick()
    }

    /// Advances the simulation by one step of the configured
    /// [`TimingEngine`] (see [`Controller::step`]).
    ///
    /// Returns `true` while work remains.
    pub fn step(&mut self) -> bool {
        self.controller.step()
    }

    /// Runs until all queued requests and owed refreshes have completed and
    /// returns a snapshot of the statistics window.
    pub fn run_to_completion(&mut self) -> Stats {
        self.controller.drain();
        self.controller.stats().clone()
    }

    /// Feeds an entire request trace through the controller, keeping its
    /// queues saturated (back-pressure is respected), then drains and returns
    /// the statistics for the window.
    ///
    /// This models the paper's measurement setup: the interleaver front-end
    /// always has the next burst ready, so the achieved bandwidth is limited
    /// only by the DRAM.
    pub fn run_trace<I>(&mut self, trace: I) -> Stats
    where
        I: IntoIterator<Item = Request>,
    {
        let mut trace = trace.into_iter();
        let mut exhausted = false;
        loop {
            // Fill exactly the free queue slots (no failed-enqueue probing).
            let mut free = self.controller.free_slots();
            while free > 0 && !exhausted {
                match trace.next() {
                    Some(item) => {
                        let accepted = self.controller.enqueue(item);
                        debug_assert!(accepted, "enqueue within free_slots cannot fail");
                        free -= 1;
                    }
                    None => exhausted = true,
                }
            }
            if self.controller.pending_requests() == 0 {
                break;
            }
            // While the queue is full no request can arrive, so stepping
            // repeatedly is indistinguishable from re-entering this loop;
            // batching until a slot frees up skips the refill bookkeeping.
            self.controller.step();
            while !self.controller.can_accept() && self.controller.pending_requests() > 0 {
                self.controller.step();
            }
        }
        self.controller.drain();
        self.controller.stats().clone()
    }

    /// Feeds a batched [`RequestSource`] through the controller — the
    /// slice-at-a-time counterpart of [`MemorySystem::run_trace`].
    ///
    /// The source's mapping work runs in
    /// [`BufferedRequests::DEFAULT_CHUNK`]-sized slices (amortizing the
    /// per-request address-generation cost) while the controller still sees
    /// the identical request sequence with identical back-pressure, so the
    /// returned statistics are bit-identical to `run_trace` over the
    /// equivalent scalar iterator.
    pub fn run_source<S: RequestSource>(&mut self, source: S) -> Stats {
        self.run_trace(BufferedRequests::new(source))
    }

    /// Resets the statistics window (see [`Controller::reset_stats`]).
    pub fn reset_stats(&mut self) {
        self.controller.reset_stats();
    }

    /// Statistics of the current window.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        self.controller.stats()
    }

    /// Energy estimate for the current statistics window using representative
    /// parameters for the configured standard.
    #[must_use]
    pub fn energy_report(&self) -> EnergyReport {
        let params = EnergyParams::for_config(self.config());
        EnergyReport::from_stats(self.stats(), self.config(), &params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::RefreshMode;
    use crate::standards::DramStandard;

    fn system(standard: DramStandard, rate: u32) -> (DramConfig, MemorySystem) {
        let config = DramConfig::preset(standard, rate).unwrap();
        let system = MemorySystem::new(config.clone()).unwrap();
        (config, system)
    }

    #[test]
    fn run_trace_completes_every_request() {
        let (config, mut system) = system(DramStandard::Ddr3, 1600);
        let n = 10_000u64;
        let stats = system.run_trace((0..n).map(|i| Request::write(config.decode_linear(i))));
        assert_eq!(stats.completed_requests, n);
        assert_eq!(stats.write_bursts, n);
        assert_eq!(stats.read_bursts, 0);
    }

    #[test]
    fn sequential_writes_then_reads_measured_separately() {
        let (config, mut system) = system(DramStandard::Ddr4, 1600);
        let n = 5_000u64;
        let write_stats = system.run_trace((0..n).map(|i| Request::write(config.decode_linear(i))));
        system.reset_stats();
        let read_stats = system.run_trace((0..n).map(|i| Request::read(config.decode_linear(i))));
        assert_eq!(write_stats.write_bursts, n);
        assert_eq!(read_stats.read_bursts, n);
        assert!(write_stats.bus_utilization() > 0.5);
        assert!(read_stats.bus_utilization() > 0.5);
    }

    #[test]
    fn random_pattern_is_slower_than_sequential() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (config, _) = system(DramStandard::Lpddr4, 4266);
        let n = 20_000u64;
        let ctrl = ControllerConfig {
            refresh_mode: Some(RefreshMode::Disabled),
            ..ControllerConfig::default()
        };

        let mut seq = MemorySystem::with_controller(config.clone(), ctrl).unwrap();
        let seq_stats = seq.run_trace((0..n).map(|i| Request::read(config.decode_linear(i))));

        let mut rng = StdRng::seed_from_u64(7);
        let total = config.geometry.total_bursts();
        let mut rnd = MemorySystem::with_controller(config.clone(), ctrl).unwrap();
        let rnd_stats = rnd.run_trace(
            (0..n).map(|_| Request::read(config.decode_linear(rng.gen_range(0..total)))),
        );

        assert!(
            seq_stats.bus_utilization() > rnd_stats.bus_utilization(),
            "sequential {} should beat random {}",
            seq_stats.bus_utilization(),
            rnd_stats.bus_utilization()
        );
        assert!(rnd_stats.row_hit_rate() < seq_stats.row_hit_rate());
    }

    #[test]
    fn run_source_matches_run_trace_bit_exactly() {
        use crate::request::IteratorSource;
        let (config, mut scalar) = system(DramStandard::Ddr4, 3200);
        let (_, mut batched) = system(DramStandard::Ddr4, 3200);
        let n = 10_000u64;
        let scalar_stats =
            scalar.run_trace((0..n).map(|i| Request::write(config.decode_linear(i))));
        let batched_stats = batched.run_source(IteratorSource(
            (0..n).map(|i| Request::write(config.decode_linear(i))),
        ));
        assert_eq!(scalar_stats, batched_stats);
    }

    #[test]
    fn energy_report_is_positive_after_traffic() {
        let (config, mut system) = system(DramStandard::Ddr5, 6400);
        let _ = system.run_trace((0..2_000u64).map(|i| Request::write(config.decode_linear(i))));
        let report = system.energy_report();
        assert!(report.total_mj > 0.0);
        assert!(report.nj_per_byte > 0.0);
    }

    #[test]
    fn enqueue_respects_backpressure() {
        let (config, mut system) = system(DramStandard::Ddr4, 3200);
        let mut accepted = 0u64;
        for i in 0..1_000u64 {
            if system.enqueue(Request::write(config.decode_linear(i))) {
                accepted += 1;
            }
        }
        assert!(
            accepted <= 64,
            "default queue capacity should bound acceptance"
        );
        let stats = system.run_to_completion();
        assert_eq!(stats.completed_requests, accepted);
    }
}
