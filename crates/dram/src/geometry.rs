//! Device geometry: banks, bank groups, rows, columns and burst length —
//! plus the channel/rank topology scaling one geometry out to a memory
//! subsystem.

use crate::error::ConfigError;

/// Channel/rank scale-out of a DRAM configuration.
///
/// A [`DeviceGeometry`] describes **one rank of one channel**; the topology
/// says how many independent channels the subsystem exposes and how many
/// ranks share each channel's command/data bus.  Channels are fully
/// independent (own bus, own controller — see
/// [`ChannelRouter`](crate::channel::ChannelRouter)); ranks multiply the
/// banks behind one controller and pay a bus-turnaround penalty
/// ([`TimingParams::t_rank_to_rank`](crate::TimingParams::t_rank_to_rank))
/// whenever consecutive data bursts come from different ranks.
///
/// The default `1 × 1` topology reproduces the single-channel, single-rank
/// device of the paper's Table I bit-exactly.
///
/// # Examples
///
/// ```
/// use tbi_dram::ChannelTopology;
///
/// let topology = ChannelTopology::new(2, 2);
/// assert_eq!(topology.units(), 4);
/// assert!(!topology.is_single());
/// assert!(ChannelTopology::default().is_single());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelTopology {
    /// Number of independent channels (each with its own controller and bus).
    pub channels: u32,
    /// Number of ranks sharing each channel's bus.
    pub ranks: u32,
}

impl Default for ChannelTopology {
    fn default() -> Self {
        Self {
            channels: 1,
            ranks: 1,
        }
    }
}

impl ChannelTopology {
    /// Creates a topology of `channels` × `ranks`.
    #[must_use]
    pub fn new(channels: u32, ranks: u32) -> Self {
        Self { channels, ranks }
    }

    /// Whether this is the legacy single-channel, single-rank topology.
    #[must_use]
    pub fn is_single(&self) -> bool {
        self.channels == 1 && self.ranks == 1
    }

    /// Total number of (channel, rank) units.
    #[must_use]
    pub fn units(&self) -> u32 {
        self.channels * self.ranks
    }

    /// Validates the topology.
    ///
    /// Channel and rank counts must be non-zero powers of two (channel and
    /// rank bits are spliced into address-decode chains) and stay within the
    /// modelled limits (64 channels, 8 ranks).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidGeometry`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value, max) in [("channels", self.channels, 64), ("ranks", self.ranks, 8)] {
            if value == 0 || !value.is_power_of_two() || value > max {
                return Err(ConfigError::InvalidGeometry {
                    field,
                    reason: format!("{value} must be a power of two in 1..={max}"),
                });
            }
        }
        Ok(())
    }
}

/// Physical organisation of one DRAM channel.
///
/// The model treats a channel (all devices of one rank accessed in lock-step)
/// as a single logical device: `columns_per_row` counts *bursts* per row, so
/// the page size in bytes is `columns_per_row * burst_bytes()`.
///
/// Standards without bank groups (DDR3, LPDDR4) simply use
/// `bank_groups == 1`.
///
/// # Examples
///
/// ```
/// use tbi_dram::DeviceGeometry;
///
/// let geom = DeviceGeometry {
///     bank_groups: 4,
///     banks_per_group: 4,
///     rows: 1 << 16,
///     columns_per_row: 128,
///     burst_length: 8,
///     bus_width_bits: 64,
/// };
/// assert_eq!(geom.total_banks(), 16);
/// assert_eq!(geom.burst_bytes(), 64);
/// assert_eq!(geom.page_bytes(), 8192);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceGeometry {
    /// Number of bank groups (1 for standards without bank groups).
    pub bank_groups: u32,
    /// Number of banks inside each bank group.
    pub banks_per_group: u32,
    /// Number of rows (pages) per bank.
    pub rows: u32,
    /// Number of bursts that fit in one open row (page) of one bank.
    pub columns_per_row: u32,
    /// Burst length in beats (8 for DDR3/DDR4, 16 for DDR5/LPDDR4/LPDDR5).
    pub burst_length: u32,
    /// Width of the data bus in bits.
    pub bus_width_bits: u32,
}

impl DeviceGeometry {
    /// Total number of banks in the channel.
    #[must_use]
    pub fn total_banks(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// Number of bytes transferred by one burst.
    #[must_use]
    pub fn burst_bytes(&self) -> u32 {
        self.burst_length * self.bus_width_bits / 8
    }

    /// Number of device clock cycles the data bus is occupied by one burst.
    ///
    /// DRAM transfers two beats per clock cycle (double data rate), so this
    /// is `burst_length / 2`.
    #[must_use]
    pub fn burst_cycles(&self) -> u64 {
        u64::from(self.burst_length / 2)
    }

    /// Page (row buffer) size in bytes.
    #[must_use]
    pub fn page_bytes(&self) -> u32 {
        self.columns_per_row * self.burst_bytes()
    }

    /// Total capacity of the channel in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.total_banks()) * u64::from(self.rows) * u64::from(self.page_bytes())
    }

    /// Total number of addressable bursts in the channel.
    #[must_use]
    pub fn total_bursts(&self) -> u64 {
        u64::from(self.total_banks()) * u64::from(self.rows) * u64::from(self.columns_per_row)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidGeometry`] if any field is zero or if a
    /// field that is used for address-bit slicing is not a power of two.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn pow2(field: &'static str, value: u32) -> Result<(), ConfigError> {
            if value == 0 || !value.is_power_of_two() {
                return Err(ConfigError::InvalidGeometry {
                    field,
                    reason: format!("{value} must be a non-zero power of two"),
                });
            }
            Ok(())
        }
        pow2("bank_groups", self.bank_groups)?;
        pow2("banks_per_group", self.banks_per_group)?;
        pow2("rows", self.rows)?;
        pow2("columns_per_row", self.columns_per_row)?;
        pow2("burst_length", self.burst_length)?;
        if self.bus_width_bits == 0 || self.bus_width_bits % 8 != 0 {
            return Err(ConfigError::InvalidGeometry {
                field: "bus_width_bits",
                reason: format!("{} must be a non-zero multiple of 8", self.bus_width_bits),
            });
        }
        if self.burst_length < 2 {
            return Err(ConfigError::InvalidGeometry {
                field: "burst_length",
                reason: "burst length must be at least 2 beats".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ddr4_like() -> DeviceGeometry {
        DeviceGeometry {
            bank_groups: 4,
            banks_per_group: 4,
            rows: 1 << 15,
            columns_per_row: 128,
            burst_length: 8,
            bus_width_bits: 64,
        }
    }

    #[test]
    fn derived_quantities() {
        let g = ddr4_like();
        assert_eq!(g.total_banks(), 16);
        assert_eq!(g.burst_bytes(), 64);
        assert_eq!(g.burst_cycles(), 4);
        assert_eq!(g.page_bytes(), 128 * 64);
        assert_eq!(g.total_bursts(), 16 * (1 << 15) * 128);
        assert_eq!(
            g.capacity_bytes(),
            u64::from(g.total_banks()) * (1 << 15) * 128 * 64
        );
    }

    #[test]
    fn validate_accepts_good_geometry() {
        assert!(ddr4_like().validate().is_ok());
    }

    #[test]
    fn validate_rejects_non_power_of_two_banks() {
        let mut g = ddr4_like();
        g.banks_per_group = 3;
        assert!(matches!(
            g.validate(),
            Err(ConfigError::InvalidGeometry {
                field: "banks_per_group",
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_zero_rows() {
        let mut g = ddr4_like();
        g.rows = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_odd_bus_width() {
        let mut g = ddr4_like();
        g.bus_width_bits = 17;
        assert!(matches!(
            g.validate(),
            Err(ConfigError::InvalidGeometry {
                field: "bus_width_bits",
                ..
            })
        ));
    }

    #[test]
    fn topology_validation_rejects_bad_counts() {
        assert!(ChannelTopology::default().validate().is_ok());
        assert!(ChannelTopology::new(4, 2).validate().is_ok());
        for bad in [
            ChannelTopology::new(0, 1),
            ChannelTopology::new(3, 1),
            ChannelTopology::new(128, 1),
            ChannelTopology::new(1, 0),
            ChannelTopology::new(1, 3),
            ChannelTopology::new(1, 16),
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn topology_units_and_single() {
        assert_eq!(ChannelTopology::new(4, 2).units(), 8);
        assert!(ChannelTopology::new(1, 1).is_single());
        assert!(!ChannelTopology::new(2, 1).is_single());
        assert!(!ChannelTopology::new(1, 2).is_single());
    }

    #[test]
    fn no_bank_group_geometry_is_valid() {
        let mut g = ddr4_like();
        g.bank_groups = 1;
        g.banks_per_group = 8;
        assert!(g.validate().is_ok());
        assert_eq!(g.total_banks(), 8);
    }
}
