//! Structure-of-arrays buffers for batched address generation.
//!
//! An [`AddressBatch`] holds decoded `(channel, PhysicalAddress)` tuples as
//! six separate `u32` lanes (channel, rank, bank group, bank, row, column)
//! instead of an array of structs.  The batched mapping kernels
//! ([`PermutationMapping::decode_batch`](crate::PermutationMapping::decode_batch),
//! [`AddressDecoder::decode_batch`](crate::AddressDecoder::decode_batch))
//! write each lane in its own tight loop, so a field extraction is a single
//! shift/mask over a contiguous slice — the layout the compiler can keep in
//! registers and auto-vectorize — rather than five scattered stores per
//! element.
//!
//! # Invariants
//!
//! All six lanes always have the same length; every mutation path
//! ([`AddressBatch::push`], [`AddressBatch::append_with`],
//! [`AddressBatch::clear`]) preserves this.
//!
//! # Examples
//!
//! ```
//! use tbi_dram::{AddressBatch, PhysicalAddress};
//!
//! let mut batch = AddressBatch::new();
//! batch.push(1, PhysicalAddress::new(2, 3, 40, 5));
//! assert_eq!(batch.len(), 1);
//! assert_eq!(batch.get(0), (1, PhysicalAddress::new(2, 3, 40, 5)));
//! assert_eq!(batch.rows(), &[40]);
//! ```

use crate::address::PhysicalAddress;

/// Mutable views of the six lanes of a freshly appended [`AddressBatch`]
/// region, handed to batch kernels by [`AddressBatch::append_with`].
///
/// All slices have the same length.  The region is zero-initialised, so
/// kernels may either assign or OR into the lanes, and may leave lanes they
/// do not produce (e.g. the channel lane of a single-channel decode)
/// untouched.
pub struct AddressLanesMut<'a> {
    /// Channel index lane.
    pub channel: &'a mut [u32],
    /// Rank index lane.
    pub rank: &'a mut [u32],
    /// Bank-group index lane.
    pub bank_group: &'a mut [u32],
    /// Bank index lane.
    pub bank: &'a mut [u32],
    /// Row index lane.
    pub row: &'a mut [u32],
    /// Column index lane.
    pub column: &'a mut [u32],
}

/// A growable structure-of-arrays buffer of decoded
/// `(channel, PhysicalAddress)` tuples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddressBatch {
    channel: Vec<u32>,
    rank: Vec<u32>,
    bank_group: Vec<u32>,
    bank: Vec<u32>,
    row: Vec<u32>,
    column: Vec<u32>,
}

impl AddressBatch {
    /// Creates an empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with `capacity` reserved in every lane.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            channel: Vec::with_capacity(capacity),
            rank: Vec::with_capacity(capacity),
            bank_group: Vec::with_capacity(capacity),
            bank: Vec::with_capacity(capacity),
            row: Vec::with_capacity(capacity),
            column: Vec::with_capacity(capacity),
        }
    }

    /// Number of addresses in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        debug_assert!(
            self.rank.len() == self.channel.len()
                && self.bank_group.len() == self.channel.len()
                && self.bank.len() == self.channel.len()
                && self.row.len() == self.channel.len()
                && self.column.len() == self.channel.len(),
            "lane lengths diverged"
        );
        self.channel.len()
    }

    /// Whether the batch holds no addresses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.channel.is_empty()
    }

    /// Empties every lane, keeping the allocations.
    pub fn clear(&mut self) {
        self.channel.clear();
        self.rank.clear();
        self.bank_group.clear();
        self.bank.clear();
        self.row.clear();
        self.column.clear();
    }

    /// Reserves room for `additional` more addresses in every lane.
    pub fn reserve(&mut self, additional: usize) {
        self.channel.reserve(additional);
        self.rank.reserve(additional);
        self.bank_group.reserve(additional);
        self.bank.reserve(additional);
        self.row.reserve(additional);
        self.column.reserve(additional);
    }

    /// Appends one `(channel, address)` tuple.
    pub fn push(&mut self, channel: u32, address: PhysicalAddress) {
        self.channel.push(channel);
        self.rank.push(address.rank);
        self.bank_group.push(address.bank_group);
        self.bank.push(address.bank);
        self.row.push(address.row);
        self.column.push(address.column);
    }

    /// Zero-extends every lane by `len` elements and hands the new region to
    /// `fill` as per-lane mutable slices — the append path of the batch
    /// decode kernels.
    pub fn append_with<F>(&mut self, len: usize, fill: F)
    where
        F: FnOnce(AddressLanesMut<'_>),
    {
        let start = self.len();
        let end = start + len;
        self.channel.resize(end, 0);
        self.rank.resize(end, 0);
        self.bank_group.resize(end, 0);
        self.bank.resize(end, 0);
        self.row.resize(end, 0);
        self.column.resize(end, 0);
        fill(AddressLanesMut {
            channel: &mut self.channel[start..],
            rank: &mut self.rank[start..],
            bank_group: &mut self.bank_group[start..],
            bank: &mut self.bank[start..],
            row: &mut self.row[start..],
            column: &mut self.column[start..],
        });
    }

    /// The `(channel, address)` tuple at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn get(&self, index: usize) -> (u32, PhysicalAddress) {
        (self.channel[index], self.address(index))
    }

    /// The physical address at `index` (without the channel).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn address(&self, index: usize) -> PhysicalAddress {
        PhysicalAddress {
            rank: self.rank[index],
            bank_group: self.bank_group[index],
            bank: self.bank[index],
            row: self.row[index],
            column: self.column[index],
        }
    }

    /// Iterates the batch as `(channel, PhysicalAddress)` tuples.
    pub fn iter(&self) -> impl Iterator<Item = (u32, PhysicalAddress)> + '_ {
        (0..self.len()).map(move |index| self.get(index))
    }

    /// The channel lane.
    #[must_use]
    pub fn channels(&self) -> &[u32] {
        &self.channel
    }

    /// The rank lane.
    #[must_use]
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }

    /// The bank-group lane.
    #[must_use]
    pub fn bank_groups(&self) -> &[u32] {
        &self.bank_group
    }

    /// The bank lane.
    #[must_use]
    pub fn banks(&self) -> &[u32] {
        &self.bank
    }

    /// The row lane.
    #[must_use]
    pub fn rows(&self) -> &[u32] {
        &self.row
    }

    /// The column lane.
    #[must_use]
    pub fn columns(&self) -> &[u32] {
        &self.column
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut batch = AddressBatch::with_capacity(4);
        assert!(batch.is_empty());
        let a = PhysicalAddress::new(1, 2, 3, 4).with_rank(1);
        let b = PhysicalAddress::new(0, 0, 9, 8);
        batch.push(0, a);
        batch.push(3, b);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.get(0), (0, a));
        assert_eq!(batch.get(1), (3, b));
        assert_eq!(batch.address(1), b);
        let collected: Vec<_> = batch.iter().collect();
        assert_eq!(collected, vec![(0, a), (3, b)]);
        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn append_with_zero_fills_and_appends() {
        let mut batch = AddressBatch::new();
        batch.push(7, PhysicalAddress::new(1, 1, 1, 1));
        batch.append_with(3, |lanes| {
            assert_eq!(lanes.channel, &[0, 0, 0]);
            assert_eq!(lanes.row, &[0, 0, 0]);
            lanes.row[1] = 42;
            lanes.column[2] = 5;
        });
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.get(0), (7, PhysicalAddress::new(1, 1, 1, 1)));
        assert_eq!(batch.address(1), PhysicalAddress::default());
        assert_eq!(batch.address(2).row, 42);
        assert_eq!(batch.address(3).column, 5);
        assert_eq!(batch.rows(), &[1, 0, 42, 0]);
        assert_eq!(batch.channels(), &[7, 0, 0, 0]);
    }

    #[test]
    fn lanes_expose_all_fields() {
        let mut batch = AddressBatch::new();
        batch.push(1, PhysicalAddress::new(2, 3, 4, 5).with_rank(6));
        assert_eq!(batch.channels(), &[1]);
        assert_eq!(batch.ranks(), &[6]);
        assert_eq!(batch.bank_groups(), &[2]);
        assert_eq!(batch.banks(), &[3]);
        assert_eq!(batch.rows(), &[4]);
        assert_eq!(batch.columns(), &[5]);
    }
}
