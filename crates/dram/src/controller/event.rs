//! The event engine's incremental scheduler.
//!
//! The cycle-accurate reference re-derives every bank's candidate command
//! from scratch each cycle.  The event engine cannot afford that: its whole
//! point is that scheduler work scales with *state transitions*, not with
//! simulated cycles.  This module maintains a per-bank **head candidate
//! cache** with the per-bank component of each candidate's earliest-ready
//! cycle.  The cache only changes when the owning bank changes — a request
//! arrives at an empty bank, the bank's head is retired, or a command
//! mutates the bank state — all O(1) events hooked into
//! [`Controller::enqueue`](super::Controller::enqueue) and
//! [`Controller::issue`](super::Controller).
//!
//! Channel-level constraints (tCCD, tRRD, tFAW, write-to-read turnaround,
//! data-bus occupancy) shift the ready cycles of *many* candidates whenever
//! any command issues, so they are deliberately **not** cached: they
//! collapse into one small floor table — indexed by (command class, bank
//! group) — computed once per scheduling decision, making the per-candidate
//! scan a table lookup, a `max` and a packed-key comparison.
//!
//! The fast path is only taken in states where it provably reproduces the
//! full scheduler's decision: FR-FCFS scheduling, open-page policy, at most
//! 8 **rank-qualified** bank groups (`ranks × bank_groups`, so dual-rank
//! DDR4 still qualifies), and no owed refresh other than the per-bank kind (an owed
//! per-bank refresh adds exactly one priority-0 candidate for its target
//! bank, which the fast path models directly).  Everything else — all-bank
//! refresh drains, FCFS, closed-page, exotic geometries — falls back to the
//! full scan that the cycle engine uses.  The cross-engine golden tests pin
//! the equivalence.

use crate::address::PhysicalAddress;
use crate::command::Command;

use super::{Controller, PagePolicy, SchedulingPolicy};

/// Command-class indices of the floor table (`floor_idx = class * 8 + bank
/// group`).
const CLASS_READ: u8 = 0;
const CLASS_WRITE: u8 = 1;
const CLASS_ACTIVATE: u8 = 2;
const CLASS_PRECHARGE: u8 = 3;

/// Cached scheduling candidate for the head request of one bank, packed for
/// the branch-light selection scan.  Banks without a queued head hold the
/// `INVALID` sentinel, whose selection key compares above every real
/// candidate, so the scan needs no validity branches.  The winner's target
/// address lives in the controller's parallel `head_addr` array, keeping
/// this struct at 24 bytes so a 32-bank scan touches 12 cache lines.
#[derive(Debug, Clone, Copy)]
pub(super) struct HeadCandidate {
    /// Per-bank component of the earliest-ready cycle (`col_allowed_at`,
    /// `act_allowed_at` or `pre_allowed_at` of the owning bank).
    pub perbank_ready: u64,
    /// `(priority << 56) | seq`: compares like `(priority, seq)` as long as
    /// sequence numbers stay below 2^56 (10^16 requests — unreachable).
    pub prio_seq: u64,
    /// Floor-table index: `class * 8 + bank_group`.
    pub floor_idx: u8,
}

impl HeadCandidate {
    const INVALID: Self = Self {
        perbank_ready: u64::MAX,
        prio_seq: u64::MAX,
        floor_idx: 0,
    };
}

impl Default for HeadCandidate {
    fn default() -> Self {
        Self::INVALID
    }
}

impl Controller {
    /// Whether the incremental fast path may serve scheduling decisions in
    /// the current *configuration* (per-step state such as owed refreshes is
    /// checked in [`Controller::advance`]).
    #[inline]
    pub(super) fn fast_path_configured(&self) -> bool {
        self.ctrl.scheduling == SchedulingPolicy::FrFcfs
            && self.ctrl.page_policy == PagePolicy::Open
            && self.last_act_per_group.len() <= 8
    }

    /// Derives the candidate for `flat_bank`'s head request from the current
    /// bank state, mirroring the classification of the full scheduler scan.
    fn classify_head(&self, flat_bank: usize) -> Option<(HeadCandidate, PhysicalAddress)> {
        let head = self.queues.head(flat_bank)?;
        let address = head.request.address;
        // Rank-qualified group index, consistent with the floor table rows
        // (on single-rank channels this is the plain bank group).
        let group = (address.rank * self.config.geometry.bank_groups + address.bank_group) as u8;
        let (priority, perbank_ready, class) = if self.banks.is_row_open(flat_bank, address.row) {
            let class = if head.request.is_write() {
                CLASS_WRITE
            } else {
                CLASS_READ
            };
            (1u64, self.banks.col_allowed_at(flat_bank), class)
        } else if self.banks.is_idle(flat_bank) {
            (2, self.banks.act_allowed_at(flat_bank), CLASS_ACTIVATE)
        } else {
            (3, self.banks.pre_allowed_at(flat_bank), CLASS_PRECHARGE)
        };
        debug_assert!(head.seq < 1 << 56, "sequence number overflows the key");
        Some((
            HeadCandidate {
                perbank_ready,
                prio_seq: (priority << 56) | head.seq,
                floor_idx: class * 8 + group,
            },
            address,
        ))
    }

    /// Re-derives the cached candidate of `flat_bank` (called whenever that
    /// bank's queue head or bank state changes).
    pub(super) fn reclassify_bank(&mut self, flat_bank: usize) {
        match self.classify_head(flat_bank) {
            Some((candidate, address)) => {
                self.head_cand[flat_bank] = candidate;
                self.head_addr[flat_bank] = address;
            }
            None => self.head_cand[flat_bank] = HeadCandidate::INVALID,
        }
    }

    /// Rebuilds the entire cache (all-bank refresh / precharge-all mutate
    /// every bank at once; both are rare).
    pub(super) fn reclassify_all_banks(&mut self) {
        for flat_bank in 0..self.banks.len() {
            self.reclassify_bank(flat_bank);
        }
    }

    /// Rebuilds the read/write rows of the floor table (invalidated by
    /// column commands, which move tCCD/turnaround/bus state).
    ///
    /// Per group the floor takes one of at most four values (same/different
    /// group relative to the last column and the last write), so the rows
    /// are filled with the different-group base and the two special groups
    /// are adjusted afterwards.
    fn rebuild_column_floors(&mut self) {
        let t = &self.config.timing;
        let groups = self.last_act_per_group.len();
        let bank_groups = self.config.geometry.bank_groups as usize;
        debug_assert!(groups <= 8);
        let (mut write_free, mut read_free) = (self.data_bus_free_at, self.data_bus_free_at);
        match self.last_data_was_write {
            Some(true) => read_free += t.t_bus_turn,
            Some(false) => write_free += t.t_bus_turn,
            None => {}
        }
        let (ccd_diff, ccd_same, ccd_group) = match self.last_column {
            Some(col) => (
                t.column_ready_after_column(col.time, false),
                t.column_ready_after_column(col.time, true),
                col.group as usize,
            ),
            None => (0, 0, usize::MAX),
        };
        let (wtr_diff, wtr_same, wtr_group) = match self.last_write_data_end {
            Some((end, group)) => (
                t.read_ready_after_write_data(end, false),
                t.read_ready_after_write_data(end, true),
                group as usize,
            ),
            None => (0, 0, usize::MAX),
        };
        let rd = (CLASS_READ * 8) as usize;
        let wr = (CLASS_WRITE * 8) as usize;
        for g in 0..groups {
            // Groups on a different rank than the last data burst pay the
            // rank-to-rank bus bubble on top of the shared bus floor (the
            // extra is 0 on single-rank channels, where `g / bank_groups`
            // always equals the last data rank).
            let rank_extra = match self.last_data_rank {
                Some(rank) if rank as usize != g / bank_groups => t.t_rank_to_rank,
                _ => 0,
            };
            let bus_floor_read = (read_free + rank_extra).saturating_sub(t.cl);
            let bus_floor_write = (write_free + rank_extra).saturating_sub(t.cwl);
            self.floors[rd + g] = ccd_diff.max(wtr_diff).max(bus_floor_read);
            self.floors[wr + g] = ccd_diff.max(bus_floor_write);
        }
        if ccd_group < groups {
            self.floors[rd + ccd_group] = self.floors[rd + ccd_group].max(ccd_same);
            self.floors[wr + ccd_group] = self.floors[wr + ccd_group].max(ccd_same);
        }
        if wtr_group < groups {
            self.floors[rd + wtr_group] = self.floors[rd + wtr_group].max(wtr_same);
        }
    }

    /// Rebuilds the activate rows of the floor table (invalidated by ACT
    /// commands, which move tRRD/tFAW state).
    fn rebuild_activate_floors(&mut self) {
        let t = &self.config.timing;
        let groups = self.last_act_per_group.len();
        debug_assert!(groups <= 8);
        let act_floor_any = self
            .last_act_any
            .map_or(0, |last| t.act_ready_after_act(last, false));
        let faw_floor = if self.act_count >= 4 {
            t.act_ready_after_faw(self.act_ring[(self.act_count & 3) as usize])
        } else {
            0
        };
        for g in 0..groups {
            let group_floor = match self.last_act_per_group[g] {
                Some(last) => t.act_ready_after_act(last, true),
                None => 0,
            };
            self.floors[(CLASS_ACTIVATE * 8) as usize + g] =
                act_floor_any.max(group_floor).max(faw_floor);
        }
    }

    /// One event-engine step on the fast path.
    ///
    /// Caller guarantees: [`Self::fast_path_configured`], and any owed
    /// refresh (`refresh_pending`) is of the **per-bank** kind.  Under those
    /// preconditions the candidate set consists exactly of the cached
    /// per-bank head candidates — plus, while a per-bank refresh is owed,
    /// one priority-0 candidate for the refresh target (REFpb if the bank is
    /// idle, otherwise the precharge clearing it; an idle target's own
    /// request candidate is blocked, exactly as in the full scan).  The full
    /// scheduler's decision is the lexicographic minimum of
    /// `(max(ready, now), priority, seq)` over that set.
    pub(super) fn advance_fast(&mut self, refresh_pending: bool) -> bool {
        // Refresh the per-(class, bank group) channel floor table where the
        // last issued commands invalidated it (column and activate floors
        // shift independently; precharge floors are always 0).  O(bank
        // groups) on invalidation, so the per-candidate scan below is one
        // lookup, one `max` and one packed comparison.
        if self.floors_col_dirty {
            self.rebuild_column_floors();
            self.floors_col_dirty = false;
        }
        if self.floors_act_dirty {
            self.rebuild_activate_floors();
            self.floors_act_dirty = false;
        }
        let floors = &self.floors;

        // While a per-bank refresh is owed, the target's own request
        // candidate is blocked if the bank is idle (it must not be
        // reopened); stash the INVALID sentinel over it for the scan.
        let refresh_target = if refresh_pending {
            self.refresh.target_bank() as usize
        } else {
            usize::MAX
        };
        let mut stashed = HeadCandidate::INVALID;
        if refresh_pending && self.banks.is_idle(refresh_target) {
            stashed =
                std::mem::replace(&mut self.head_cand[refresh_target], HeadCandidate::INVALID);
        }

        // Selection scan: the winner minimizes (max(ready, now), priority,
        // seq), packed into one u128 key so the compare is branch-light.
        // Empty banks hold the INVALID sentinel whose key is u128::MAX, so a
        // straight sequential sweep needs no validity checks.
        let now = self.now;
        let mut best_key = u128::MAX;
        let mut best_bank = usize::MAX;
        for (flat_bank, cand) in self.head_cand.iter().enumerate() {
            let ready = cand
                .perbank_ready
                .max(floors[(cand.floor_idx & 31) as usize])
                .max(now);
            let key = (u128::from(ready) << 64) | u128::from(cand.prio_seq);
            // Written as selects (not an if-block) so the winner update
            // compiles to conditional moves; winner position is erratic and
            // a branch here mispredicts constantly.
            let better = key < best_key;
            best_bank = if better { flat_bank } else { best_bank };
            best_key = if better { key } else { best_key };
        }

        // The per-bank refresh candidate: priority 0, sequence 0, exactly as
        // the full scan's `consider(0, 0, ...)` calls.
        let mut refresh_command = None;
        if refresh_pending {
            let (ready, command) = if self.banks.is_idle(refresh_target) {
                // Restore the stashed request candidate before any return.
                self.head_cand[refresh_target] = stashed;
                (
                    self.banks.act_allowed_at(refresh_target),
                    Command {
                        kind: crate::command::CommandKind::RefreshBank,
                        address: self.bank_address(refresh_target),
                    },
                )
            } else {
                (
                    self.banks.pre_allowed_at(refresh_target),
                    Command::precharge(self.bank_address(refresh_target)),
                )
            };
            let key = u128::from(ready.max(now)) << 64;
            if key < best_key {
                best_key = key;
                best_bank = refresh_target;
                refresh_command = Some(command);
            }
        }

        if best_bank == usize::MAX {
            // No queued work (and no refresh owed, by precondition): one idle
            // cycle, exactly like the reference engine.
            self.now += 1;
            return false;
        }
        let at = (best_key >> 64) as u64;
        let command = match refresh_command {
            Some(command) => command,
            None => {
                let address = self.head_addr[best_bank];
                match self.head_cand[best_bank].floor_idx >> 3 {
                    CLASS_READ => Command::read(address),
                    CLASS_WRITE => Command::write(address),
                    CLASS_ACTIVATE => Command::activate(address),
                    _ => Command::precharge(address),
                }
            }
        };
        if at > self.now {
            // Never jump past a refresh deadline: crossing it changes the
            // candidate set, so stop there and rescan.
            let due = self.refresh.next_due();
            if due <= at {
                self.stats.stall_cycles += due - self.now;
                self.now = due;
                return true;
            }
            self.stats.stall_cycles += at - self.now;
            self.now = at;
        }
        self.issue(command, best_bank);
        self.now += 1;
        !self.queues.is_empty() || self.refresh.is_pending()
    }
}
