//! The memory controller: transaction queues, command scheduling, timing
//! enforcement and refresh.
//!
//! The controller models a single-channel DRAM controller with per-bank
//! transaction queues, an FR-FCFS (first-ready, first-come-first-served)
//! scheduler with an open-page policy by default, and a refresh engine.  It
//! issues at most one command per cycle while enforcing the JEDEC constraints
//! defined in [`TimingParams`](crate::TimingParams).
//!
//! ## Timing engines
//!
//! Time can be advanced in two ways (see [`TimingEngine`]):
//!
//! * **Event-driven** ([`Controller::advance`], the default) — one scheduling
//!   decision per *state transition*: the controller computes the earliest
//!   cycle at which any command becomes issuable (across per-bank timing
//!   expiries, channel-level constraints and the next refresh deadline) and
//!   jumps the clock directly to it, issuing the winning command in the same
//!   step.
//! * **Cycle-accurate** ([`Controller::tick`]) — the classic reference loop
//!   that advances exactly one device clock cycle per call, re-evaluating the
//!   scheduler every cycle.  It is kept as the ground truth for tests that
//!   pin cycle-level behaviour.
//!
//! Both engines call the *same* scheduling and issue functions; the only
//! difference is how the clock reaches the next decision point.  Because the
//! candidate set can only change when a command issues, when a refresh
//! deadline passes, or when a request arrives, the two engines make identical
//! decisions at identical cycles and produce bit-identical [`Stats`] — a
//! property pinned by the cross-engine golden tests (see
//! `tests/integration_engines.rs` at the workspace root).
//!
//! Most users drive the controller through [`MemorySystem`](crate::sim::MemorySystem)
//! rather than using it directly.

mod event;
mod queue;
mod refresh;

pub use queue::{CommandQueues, QueuedRequest};
pub use refresh::{RefreshEngine, RefreshMode};

use crate::bank::{BankArray, BankId, BankState};
use crate::command::{Command, CommandKind};
use crate::error::ConfigError;
use crate::request::{Request, RequestKind};
use crate::standards::DramConfig;
use crate::stats::Stats;

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PagePolicy {
    /// Keep rows open after an access (best for access streams with
    /// row-buffer locality).
    #[default]
    Open,
    /// Precharge a bank as soon as its queue runs dry.
    Closed,
}

/// Command scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchedulingPolicy {
    /// First-ready, first-come-first-served: the oldest *issuable* command
    /// wins, allowing reordering across banks.
    #[default]
    FrFcfs,
    /// Strict in-order service of the oldest request (no cross-bank
    /// reordering); useful as an ablation baseline.
    Fcfs,
}

/// How the controller advances its clock between scheduling decisions.
///
/// Both engines execute the *same* scheduler and therefore produce
/// bit-identical [`Stats`]; the event engine merely skips the cycles in
/// which the cycle engine would find nothing to do.  See the
/// [module documentation](self) for the invariants behind this guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TimingEngine {
    /// Cycle-accurate reference: one device clock cycle per step
    /// ([`Controller::tick`]).
    Cycle,
    /// Event-driven: jump directly to the next cycle at which any state
    /// transition can occur ([`Controller::advance`]).
    #[default]
    Event,
}

impl TimingEngine {
    /// Short lowercase name (`"cycle"` / `"event"`), e.g. for CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TimingEngine::Cycle => "cycle",
            TimingEngine::Event => "event",
        }
    }
}

impl std::fmt::Display for TimingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Controller configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ControllerConfig {
    /// Total number of outstanding requests accepted by the transaction
    /// queues.
    pub queue_capacity: usize,
    /// Row-buffer policy.
    pub page_policy: PagePolicy,
    /// Scheduling policy.
    pub scheduling: SchedulingPolicy,
    /// Refresh mode; `None` selects the standard's default
    /// ([`DramConfig::default_refresh`]).
    pub refresh_mode: Option<RefreshMode>,
    /// Clock-advancement strategy used by [`Controller::step`] (and thereby
    /// [`MemorySystem::run_trace`](crate::sim::MemorySystem::run_trace)).
    pub engine: TimingEngine,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            page_policy: PagePolicy::Open,
            scheduling: SchedulingPolicy::FrFcfs,
            refresh_mode: None,
            engine: TimingEngine::Event,
        }
    }
}

/// What the scheduler decided at the current cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScheduleDecision {
    /// Issue this command for the request queued on `flat_bank` (if a column
    /// command, the head request of that bank is retired).
    Issue { command: Command, flat_bank: usize },
    /// Nothing is issuable right now; the earliest candidate becomes ready
    /// at `at` and, barring a refresh deadline before then, `command` is the
    /// one the scheduler will pick at that cycle (the best `(priority, seq)`
    /// among candidates ready exactly at `at`).
    WaitIssue {
        at: u64,
        command: Command,
        flat_bank: usize,
    },
    /// Nothing to do at all (queues empty, no refresh owed).
    Idle,
}

/// The last column command on the channel; `group` is the **rank-qualified**
/// bank-group index (`rank * bank_groups + bank_group`), so same-group timing
/// (tCCD_L / tWTR_L) only applies within one rank.
#[derive(Debug, Clone, Copy)]
struct LastColumn {
    time: u64,
    group: u32,
}

/// One retired request, recorded by the opt-in completion log (see
/// [`Controller::set_completion_logging`]).
///
/// Requests of one bank retire in FIFO order (FR-FCFS only reorders *across*
/// banks), so a driver that mirrors its enqueues in per-bank FIFOs can
/// attribute each completion to the exact request that caused it from
/// `flat_bank` alone — the hook the stream scheduler's per-tenant latency
/// accounting is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Cycle at which the request's data burst leaves the bus (its
    /// contribution to [`Stats::elapsed_cycles`]).
    pub data_end: u64,
    /// Rank-qualified flat bank index of the retired request (see
    /// [`PhysicalAddress::flat_bank`](crate::PhysicalAddress::flat_bank)).
    pub flat_bank: u32,
}

/// A single-channel DRAM memory controller.
///
/// With a multi-rank [`ChannelTopology`](crate::ChannelTopology) the
/// controller serves `ranks * total_banks` banks; ranks replicate the bank
/// space and share the data bus, paying
/// [`TimingParams::t_rank_to_rank`](crate::TimingParams::t_rank_to_rank)
/// whenever consecutive data bursts come from different ranks.  Same-group
/// timings (tCCD_L, tRRD_L, tWTR_L) apply only within one rank's bank
/// groups.
#[derive(Debug, Clone)]
pub struct Controller {
    config: DramConfig,
    ctrl: ControllerConfig,
    // SoA-packed bank lanes: the scheduler scans touch one lane at a time,
    // so the hot loops stay on dense cache lines (see `BankArray`).
    banks: BankArray,
    queues: CommandQueues,
    refresh: RefreshEngine,
    stats: Stats,
    now: u64,
    window_start: u64,
    last_completion: u64,
    // Channel-level timing state.  Per-group state is indexed by the
    // rank-qualified group (`rank * bank_groups + bank_group`).
    last_act_any: Option<u64>,
    last_act_per_group: Vec<Option<u64>>,
    // Four-activate-window ring: slot `act_count & 3` is the next to be
    // overwritten and therefore holds the 4th-last ACT once `act_count >= 4`.
    act_ring: [u64; 4],
    act_count: u64,
    last_column: Option<LastColumn>,
    /// `(data end, rank-qualified group)` of the last write.
    last_write_data_end: Option<(u64, u32)>,
    data_bus_free_at: u64,
    last_data_was_write: Option<bool>,
    /// Rank of the last data burst (drives the rank-to-rank bus bubble;
    /// always `Some(0)`-or-`None` on single-rank channels, where the bubble
    /// can never apply).
    last_data_rank: Option<u32>,
    // Incremental head-candidate cache of the event engine (see `event`);
    // `head_addr` holds the candidates' target addresses out of line so the
    // selection scan array stays compact.
    head_cand: Vec<event::HeadCandidate>,
    head_addr: Vec<crate::address::PhysicalAddress>,
    // Per-(class, bank group) channel floor table with class-level dirty
    // tracking (column and activate floors are invalidated independently).
    floors: [u64; 32],
    floors_col_dirty: bool,
    floors_act_dirty: bool,
    // `fast_path_configured()` evaluated once at construction.
    fast_path_ok: bool,
    // Opt-in completion log (empty and disabled unless a driver asks for
    // it); purely observational, so enabling it cannot perturb scheduling
    // decisions or statistics.
    completion_log: Vec<Completion>,
    log_completions: bool,
}

impl Controller {
    /// Creates a controller for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the DRAM configuration or the controller
    /// configuration is invalid.
    pub fn new(config: DramConfig, ctrl: ControllerConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        if ctrl.queue_capacity == 0 {
            return Err(ConfigError::InvalidController {
                field: "queue_capacity",
                reason: "must be at least 1".to_string(),
            });
        }
        // One controller serves every rank of its channel: the bank space is
        // replicated per rank, flat bank indices are rank-qualified.
        let ranks = config.topology.ranks as usize;
        let total_banks = config.geometry.total_banks() as usize * ranks;
        let refresh_mode = ctrl.refresh_mode.unwrap_or(config.default_refresh);
        let refresh = RefreshEngine::new(refresh_mode, &config.timing, total_banks as u32);
        let mut controller = Self {
            banks: BankArray::new(total_banks),
            queues: CommandQueues::new(total_banks, ctrl.queue_capacity),
            refresh,
            stats: Stats::new(),
            now: 0,
            window_start: 0,
            last_completion: 0,
            last_act_any: None,
            last_act_per_group: vec![None; config.geometry.bank_groups as usize * ranks],
            act_ring: [0; 4],
            act_count: 0,
            last_column: None,
            last_write_data_end: None,
            data_bus_free_at: 0,
            last_data_was_write: None,
            last_data_rank: None,
            head_cand: vec![event::HeadCandidate::default(); total_banks],
            head_addr: vec![crate::address::PhysicalAddress::default(); total_banks],
            floors: [0; 32],
            floors_col_dirty: true,
            floors_act_dirty: true,
            fast_path_ok: false,
            completion_log: Vec::new(),
            log_completions: false,
            config,
            ctrl,
        };
        controller.fast_path_ok = controller.fast_path_configured();
        Ok(controller)
    }

    /// The DRAM configuration simulated by this controller.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The controller configuration.
    #[must_use]
    pub fn controller_config(&self) -> &ControllerConfig {
        &self.ctrl
    }

    /// The effective refresh mode.
    #[must_use]
    pub fn refresh_mode(&self) -> RefreshMode {
        self.refresh.mode()
    }

    /// Current simulation time in device clock cycles.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of requests currently queued.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.queues.len()
    }

    /// Whether another request can be accepted right now.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.queues.has_space()
    }

    /// Number of requests that can be accepted right now.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.queues.free_slots()
    }

    /// Statistics for the current measurement window.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Enables or disables the completion log.
    ///
    /// While enabled, every retired request appends a [`Completion`] entry
    /// (in retirement order) for the driver to collect via
    /// [`Controller::drain_completions`].  Logging is purely observational:
    /// it never changes scheduling decisions, timing or [`Stats`], so runs
    /// with and without the log are bit-identical.
    pub fn set_completion_logging(&mut self, enabled: bool) {
        self.log_completions = enabled;
        if !enabled {
            self.completion_log.clear();
        }
    }

    /// Removes and returns all logged completions accumulated since the last
    /// drain, in retirement order.
    pub fn drain_completions(&mut self) -> std::vec::Drain<'_, Completion> {
        self.completion_log.drain(..)
    }

    /// State of the bank identified by `bank`, reassembled by value from
    /// the controller's structure-of-arrays bank lanes ([`BankState`] is
    /// `Copy`, so this is a handful of loads).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range for the configured geometry.
    #[must_use]
    pub fn bank_state(&self, bank: BankId) -> BankState {
        self.banks.get(bank.index() as usize)
    }

    /// Resets the statistics window to the current cycle.  Bank and queue
    /// state are preserved, so a write phase can be followed by a read phase
    /// with an independent measurement.
    pub fn reset_stats(&mut self) {
        self.stats = Stats::new();
        self.window_start = self.now;
        self.last_completion = self.now;
    }

    /// Enqueues a request.  Returns `false` if the transaction queue is full.
    ///
    /// # Panics
    ///
    /// Panics if the request address is outside the configured geometry (in
    /// debug builds).
    pub fn enqueue(&mut self, request: Request) -> bool {
        debug_assert!(
            request
                .address
                .is_valid_for_ranks(&self.config.geometry, self.config.topology.ranks),
            "request address {} outside geometry/topology",
            request.address
        );
        let flat = request.address.flat_bank(&self.config.geometry) as usize;
        let pushed = self.queues.push(flat, request);
        if pushed && self.queues.bank_len(flat) == 1 {
            // The request became the head of a previously empty bank.
            self.reclassify_bank(flat);
        }
        pushed
    }

    /// Advances the controller by one step of the configured
    /// [`TimingEngine`]: one cycle under [`TimingEngine::Cycle`], one state
    /// transition under [`TimingEngine::Event`].
    ///
    /// Returns `true` if any work remains (queued requests or owed refresh).
    pub fn step(&mut self) -> bool {
        match self.ctrl.engine {
            TimingEngine::Cycle => self.tick(),
            TimingEngine::Event => self.advance(),
        }
    }

    /// Advances the controller by exactly **one device clock cycle**, issuing
    /// at most one command (the cycle-accurate reference engine).
    ///
    /// This is the `tick()`-compatible shim kept for tests that pin
    /// cycle-level behaviour; bulk simulation goes through [`Self::advance`]
    /// (or [`Self::step`], which dispatches on the configured engine).
    ///
    /// Returns `true` if any work remains (queued requests or owed refresh).
    pub fn tick(&mut self) -> bool {
        self.refresh.tick(self.now);
        match self.schedule() {
            ScheduleDecision::Issue { command, flat_bank } => {
                self.issue(command, flat_bank);
            }
            ScheduleDecision::WaitIssue { at, .. } => {
                debug_assert!(at > self.now);
                self.stats.stall_cycles += 1;
            }
            ScheduleDecision::Idle => {}
        }
        self.now += 1;
        !self.queues.is_empty() || self.refresh.is_pending()
    }

    /// Advances the controller to the **next state transition** (the
    /// event-driven engine).
    ///
    /// If a command is issuable at the current cycle it is issued, exactly as
    /// under [`Self::tick`].  Otherwise the clock jumps directly to the
    /// earlier of (a) the earliest cycle at which any candidate command
    /// becomes ready and (b) the next refresh deadline.  In case (a) the
    /// winning candidate is issued in the same step — the scheduler already
    /// knows it is the best `(priority, seq)` among the candidates maturing
    /// at that cycle, and nothing else can change the candidate set before
    /// then.  In case (b) the step ends without issuing so the next decision
    /// sees the refresh obligation, exactly like the per-cycle engine would.
    ///
    /// Returns `true` if any work remains (queued requests or owed refresh).
    pub fn advance(&mut self) -> bool {
        self.refresh.tick(self.now);
        if self.fast_path_ok {
            // Incremental scheduler: O(1)-maintained per-bank candidates
            // combined with per-step channel floors (see `event`).  An owed
            // *per-bank* refresh is a single extra O(1) candidate; only
            // all-bank refresh drains need the full scan.
            let pending = self.refresh.is_pending();
            if !pending || self.refresh.mode() == RefreshMode::PerBank {
                return self.advance_fast(pending);
            }
        }
        self.advance_slow()
    }

    /// One event-engine step via the full scheduler scan (refresh windows,
    /// FCFS, closed-page and exotic geometries take this path).
    pub(crate) fn advance_slow(&mut self) -> bool {
        match self.schedule() {
            ScheduleDecision::Issue { command, flat_bank } => {
                self.issue(command, flat_bank);
                self.now += 1;
            }
            ScheduleDecision::WaitIssue {
                at,
                command,
                flat_bank,
            } => {
                debug_assert!(at > self.now);
                if self.queues.is_empty() && !self.refresh.is_pending() {
                    // No work remains (the candidate is a proactive
                    // closed-page precharge): the cycle engine's drive loop
                    // stops after one more cycle without reaching it, so
                    // mirror that final cycle instead of jump-issuing.
                    self.stats.stall_cycles += 1;
                    self.now += 1;
                    return false;
                }
                // Between `now` and `at` the candidate set can only change at
                // a refresh deadline; never jump past one.
                let due = self.refresh.next_due();
                if due <= at {
                    self.stats.stall_cycles += due - self.now;
                    self.now = due;
                } else {
                    self.stats.stall_cycles += at - self.now;
                    self.now = at;
                    self.issue(command, flat_bank);
                    self.now += 1;
                }
            }
            ScheduleDecision::Idle => {
                self.now += 1;
            }
        }
        !self.queues.is_empty() || self.refresh.is_pending()
    }

    /// Runs until all queued requests have been issued and all owed refreshes
    /// have been performed, using the configured [`TimingEngine`].
    pub fn drain(&mut self) {
        while self.step() {}
        // Account for the tail of the last data burst.
        self.finalize_elapsed();
    }

    fn finalize_elapsed(&mut self) {
        let end = self.last_completion.max(self.window_start);
        self.stats.elapsed_cycles = end - self.window_start;
    }

    // ----------------------------------------------------------------- //
    // Scheduling
    // ----------------------------------------------------------------- //

    fn schedule(&self) -> ScheduleDecision {
        let mut best_issue: Option<(u8, u64, Command, usize)> = None; // (priority, seq, cmd, bank)
                                                                      // (ready_at, priority, seq, cmd, bank): the best candidate at the
                                                                      // earliest future ready cycle — what the scheduler will pick there
                                                                      // unless a refresh deadline intervenes.
        let mut best_wait: Option<(u64, u8, u64, Command, usize)> = None;

        let consider =
            |priority: u8,
             seq: u64,
             ready_at: u64,
             command: Command,
             flat_bank: usize,
             now: u64,
             best_issue: &mut Option<(u8, u64, Command, usize)>,
             best_wait: &mut Option<(u64, u8, u64, Command, usize)>| {
                if ready_at <= now {
                    let better = match best_issue {
                        None => true,
                        Some((p, s, _, _)) => (priority, seq) < (*p, *s),
                    };
                    if better {
                        *best_issue = Some((priority, seq, command, flat_bank));
                    }
                } else {
                    let better = match best_wait {
                        None => true,
                        Some((a, p, s, _, _)) => (ready_at, priority, seq) < (*a, *p, *s),
                    };
                    if better {
                        *best_wait = Some((ready_at, priority, seq, command, flat_bank));
                    }
                }
            };

        // Refresh handling gets dedicated candidates.
        let (block_all_acts, blocked_bank) = match (self.refresh.is_pending(), self.refresh.mode())
        {
            (true, RefreshMode::AllBank) => (true, None),
            (true, RefreshMode::PerBank) => (false, Some(self.refresh.target_bank() as usize)),
            _ => (false, None),
        };

        if self.refresh.is_pending() {
            match self.refresh.mode() {
                RefreshMode::AllBank => {
                    // Precharge any open bank, then refresh when everything is idle.
                    if self.banks.all_idle() {
                        let ready = self.banks.max_act_allowed_at().unwrap_or(self.now);
                        let cmd = Command {
                            kind: CommandKind::RefreshAll,
                            address: Default::default(),
                        };
                        consider(
                            0,
                            0,
                            ready,
                            cmd,
                            0,
                            self.now,
                            &mut best_issue,
                            &mut best_wait,
                        );
                    } else {
                        for i in 0..self.banks.len() {
                            if !self.banks.is_idle(i) {
                                let addr = self.bank_address(i);
                                consider(
                                    0,
                                    i as u64,
                                    self.banks.pre_allowed_at(i),
                                    Command::precharge(addr),
                                    i,
                                    self.now,
                                    &mut best_issue,
                                    &mut best_wait,
                                );
                            }
                        }
                    }
                }
                RefreshMode::PerBank => {
                    let target = self.refresh.target_bank() as usize;
                    let addr = self.bank_address(target);
                    if self.banks.is_idle(target) {
                        let cmd = Command {
                            kind: CommandKind::RefreshBank,
                            address: addr,
                        };
                        consider(
                            0,
                            0,
                            self.banks.act_allowed_at(target),
                            cmd,
                            target,
                            self.now,
                            &mut best_issue,
                            &mut best_wait,
                        );
                    } else {
                        consider(
                            0,
                            0,
                            self.banks.pre_allowed_at(target),
                            Command::precharge(addr),
                            target,
                            self.now,
                            &mut best_issue,
                            &mut best_wait,
                        );
                    }
                }
                RefreshMode::Disabled => {}
            }
        }

        // Regular request service.
        let oldest = self.queues.oldest_seq();
        for flat_bank in self.queues.active_banks() {
            if block_all_acts && self.banks.is_idle(flat_bank) {
                // During an all-bank refresh drain no new rows may be opened.
                continue;
            }
            let head = self.queues.head(flat_bank).expect("active bank has a head");
            if self.ctrl.scheduling == SchedulingPolicy::Fcfs && Some(head.seq) != oldest {
                continue;
            }
            let addr = head.request.address;
            let bank = self.banks.get(flat_bank);
            let is_write = head.request.is_write();

            if bank.is_row_open(addr.row) {
                let ready = self.earliest_column(flat_bank, &addr, is_write);
                let cmd = if is_write {
                    Command::write(addr)
                } else {
                    Command::read(addr)
                };
                consider(
                    1,
                    head.seq,
                    ready,
                    cmd,
                    flat_bank,
                    self.now,
                    &mut best_issue,
                    &mut best_wait,
                );
            } else if bank.is_idle() {
                if blocked_bank == Some(flat_bank) {
                    // This bank is about to be refreshed; do not reopen it.
                    continue;
                }
                let ready = self.earliest_activate(flat_bank, self.qualified_group(&addr));
                consider(
                    2,
                    head.seq,
                    ready,
                    Command::activate(addr),
                    flat_bank,
                    self.now,
                    &mut best_issue,
                    &mut best_wait,
                );
            } else {
                // Row conflict: precharge first.
                let ready = bank.pre_allowed_at;
                consider(
                    3,
                    head.seq,
                    ready,
                    Command::precharge(addr),
                    flat_bank,
                    self.now,
                    &mut best_issue,
                    &mut best_wait,
                );
            }
        }

        // Closed-page policy: proactively close banks whose queues ran dry.
        if self.ctrl.page_policy == PagePolicy::Closed {
            for i in 0..self.banks.len() {
                if !self.banks.is_idle(i) && self.queues.head(i).is_none() {
                    let addr = self.bank_address(i);
                    consider(
                        4,
                        u64::MAX,
                        self.banks.pre_allowed_at(i),
                        Command::precharge(addr),
                        i,
                        self.now,
                        &mut best_issue,
                        &mut best_wait,
                    );
                }
            }
        }

        if let Some((_, _, command, flat_bank)) = best_issue {
            ScheduleDecision::Issue { command, flat_bank }
        } else if let Some((at, _, _, command, flat_bank)) = best_wait {
            ScheduleDecision::WaitIssue {
                at: at.max(self.now + 1),
                command,
                flat_bank,
            }
        } else {
            // Work pending always yields at least one candidate: every
            // active bank produces a hit/activate/precharge candidate and a
            // pending refresh produces a refresh or drain-precharge
            // candidate.  Only truly idle controllers land here.
            debug_assert!(self.queues.is_empty() && !self.refresh.is_pending());
            ScheduleDecision::Idle
        }
    }

    fn bank_address(&self, flat_bank: usize) -> crate::address::PhysicalAddress {
        let banks_per_group = self.config.geometry.banks_per_group;
        let per_rank = self.config.geometry.total_banks();
        let rank = flat_bank as u32 / per_rank;
        let within = flat_bank as u32 % per_rank;
        crate::address::PhysicalAddress {
            rank,
            bank_group: within / banks_per_group,
            bank: within % banks_per_group,
            row: self.banks.open_row_of(flat_bank).unwrap_or(0),
            column: 0,
        }
    }

    /// The rank-qualified bank-group index of an address
    /// (`rank * bank_groups + bank_group`): the index into
    /// `last_act_per_group` and the unit within which "same bank group"
    /// timings (tCCD_L, tRRD_L, tWTR_L) apply.
    fn qualified_group(&self, addr: &crate::address::PhysicalAddress) -> u32 {
        addr.rank * self.config.geometry.bank_groups + addr.bank_group
    }

    // ----------------------------------------------------------------- //
    // Timing
    // ----------------------------------------------------------------- //

    /// Earliest cycle an ACT command may be issued to `flat_bank`, combining
    /// the bank's own `act_allowed_at` with the channel-level activation-rate
    /// limits (`t_rrd_s`/`t_rrd_l`/`t_faw`).  `group` is the rank-qualified
    /// bank-group index.
    fn earliest_activate(&self, flat_bank: usize, group: u32) -> u64 {
        let t = &self.config.timing;
        let mut ready = self.banks.act_allowed_at(flat_bank);
        if let Some(last) = self.last_act_any {
            ready = ready.max(t.act_ready_after_act(last, false));
        }
        if let Some(Some(last)) = self.last_act_per_group.get(group as usize) {
            ready = ready.max(t.act_ready_after_act(*last, true));
        }
        if self.act_count >= 4 {
            let fourth_last = self.act_ring[(self.act_count & 3) as usize];
            ready = ready.max(t.act_ready_after_faw(fourth_last));
        }
        ready
    }

    /// Earliest cycle a RD/WR command may be issued to `flat_bank`, combining
    /// the bank's own `col_allowed_at` with the channel-level column-gap,
    /// write-to-read, data-bus and rank-switch constraints.
    fn earliest_column(
        &self,
        flat_bank: usize,
        addr: &crate::address::PhysicalAddress,
        is_write: bool,
    ) -> u64 {
        let t = &self.config.timing;
        let group = self.qualified_group(addr);
        let mut ready = self.banks.col_allowed_at(flat_bank);
        if let Some(col) = self.last_column {
            ready = ready.max(t.column_ready_after_column(col.time, col.group == group));
        }
        if !is_write {
            if let Some((wr_data_end, wr_group)) = self.last_write_data_end {
                ready = ready.max(t.read_ready_after_write_data(wr_data_end, wr_group == group));
            }
        }
        // Data bus availability: the command must not start its data burst
        // before the bus is free, plus a turnaround bubble on direction
        // changes and a rank-to-rank bubble when the bus hands over between
        // ranks (never on single-rank channels).
        let latency = t.column_latency(is_write);
        let mut bus_free = self.data_bus_free_at;
        if let Some(last_write) = self.last_data_was_write {
            if last_write != is_write {
                bus_free += t.t_bus_turn;
            }
        }
        if let Some(last_rank) = self.last_data_rank {
            if last_rank != addr.rank {
                bus_free += t.t_rank_to_rank;
            }
        }
        ready = ready.max(bus_free.saturating_sub(latency));
        ready
    }

    // ----------------------------------------------------------------- //
    // Issue
    // ----------------------------------------------------------------- //

    fn issue(&mut self, command: Command, flat_bank: usize) {
        let t = &self.config.timing;
        let burst = self.config.geometry.burst_cycles();
        let now = self.now;
        match command.kind {
            CommandKind::Activate => {
                let group = self.qualified_group(&command.address);
                self.banks
                    .record_activate(flat_bank, now, command.address.row, t);
                self.last_act_any = Some(now);
                self.last_act_per_group[group as usize] = Some(now);
                self.act_ring[(self.act_count & 3) as usize] = now;
                self.act_count += 1;
                self.stats.activates += 1;
                if let Some(head) = self.queues.head_mut(flat_bank) {
                    head.caused_activate = true;
                }
            }
            CommandKind::Precharge => {
                self.banks.record_precharge(flat_bank, now, t);
                self.stats.precharges += 1;
                if let Some(head) = self.queues.head_mut(flat_bank) {
                    head.caused_conflict = true;
                }
            }
            CommandKind::PrechargeAll => {
                self.banks.precharge_all_open(now, t);
                self.stats.precharges += 1;
            }
            CommandKind::Read | CommandKind::Write => {
                let is_write = command.kind == CommandKind::Write;
                if is_write {
                    self.banks.record_write(flat_bank, now, burst, t);
                } else {
                    self.banks.record_read(flat_bank, now, burst, t);
                }
                let group = self.qualified_group(&command.address);
                let latency = t.column_latency(is_write);
                let data_start = now + latency;
                let data_end = data_start + burst;
                self.data_bus_free_at = data_end;
                self.last_data_was_write = Some(is_write);
                self.last_data_rank = Some(command.address.rank);
                self.last_column = Some(LastColumn { time: now, group });
                if is_write {
                    self.last_write_data_end = Some((data_end, group));
                }
                self.stats.data_bus_busy_cycles += burst;
                self.last_completion = self.last_completion.max(data_end);

                let entry = self
                    .queues
                    .pop(flat_bank)
                    .expect("column command without a queued request");
                debug_assert_eq!(entry.request.address, command.address);
                debug_assert_eq!(entry.request.is_write(), is_write);
                self.stats.completed_requests += 1;
                if self.log_completions {
                    self.completion_log.push(Completion {
                        data_end,
                        flat_bank: flat_bank as u32,
                    });
                }
                match entry.request.kind {
                    RequestKind::Read => self.stats.read_bursts += 1,
                    RequestKind::Write => self.stats.write_bursts += 1,
                }
                // Branchless row-class accounting: the class alternates
                // erratically in conflict-heavy phases, so a branch chain
                // here mispredicts on the hottest per-command path.
                let conflict = u64::from(entry.caused_conflict);
                let empty = u64::from(!entry.caused_conflict & entry.caused_activate);
                self.stats.row_conflicts += conflict;
                self.stats.row_empties += empty;
                self.stats.row_hits += 1 - conflict - empty;
            }
            CommandKind::RefreshAll => {
                self.banks.record_refresh_all(now, t.t_rfc_ab);
                self.stats.refreshes_all_bank += 1;
                self.refresh.complete_one();
            }
            CommandKind::RefreshBank => {
                let busy = if t.t_rfc_pb > 0 {
                    t.t_rfc_pb
                } else {
                    t.t_rfc_ab
                };
                self.banks.record_refresh(flat_bank, now, busy);
                self.stats.refreshes_per_bank += 1;
                self.refresh.complete_one();
            }
        }
        // Keep the event engine's head-candidate cache in sync: single-bank
        // commands only mutate their own bank, all-bank commands mutate
        // every bank.  Channel-level state is not cached per candidate, but
        // the per-class floor table derived from it is — mark the classes
        // this command shifted.
        match command.kind {
            CommandKind::PrechargeAll | CommandKind::RefreshAll => self.reclassify_all_banks(),
            _ => self.reclassify_bank(flat_bank),
        }
        match command.kind {
            CommandKind::Read | CommandKind::Write => self.floors_col_dirty = true,
            CommandKind::Activate => self.floors_act_dirty = true,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::PhysicalAddress;
    use crate::standards::{DramConfig, DramStandard};

    fn controller(standard: DramStandard, rate: u32) -> Controller {
        let config = DramConfig::preset(standard, rate).unwrap();
        Controller::new(config, ControllerConfig::default()).unwrap()
    }

    fn no_refresh() -> ControllerConfig {
        ControllerConfig {
            refresh_mode: Some(RefreshMode::Disabled),
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn rejects_zero_queue_capacity() {
        let config = DramConfig::preset(DramStandard::Ddr4, 1600).unwrap();
        let ctrl = ControllerConfig {
            queue_capacity: 0,
            ..ControllerConfig::default()
        };
        assert!(Controller::new(config, ctrl).is_err());
    }

    #[test]
    fn single_write_completes() {
        let mut c = controller(DramStandard::Ddr4, 3200);
        assert!(c.enqueue(Request::write(PhysicalAddress::new(0, 0, 10, 3))));
        c.drain();
        let stats = c.stats();
        assert_eq!(stats.completed_requests, 1);
        assert_eq!(stats.write_bursts, 1);
        assert_eq!(stats.activates, 1);
        assert_eq!(stats.row_empties, 1);
        assert!(stats.elapsed_cycles > 0);
    }

    #[test]
    fn same_row_accesses_hit_the_row_buffer() {
        let config = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let mut c = Controller::new(config, no_refresh()).unwrap();
        for col in 0..16 {
            assert!(c.enqueue(Request::read(PhysicalAddress::new(0, 0, 5, col))));
        }
        c.drain();
        assert_eq!(c.stats().completed_requests, 16);
        assert_eq!(c.stats().activates, 1);
        assert_eq!(c.stats().row_hits, 15);
        assert_eq!(c.stats().row_empties, 1);
    }

    #[test]
    fn row_conflicts_force_precharge_and_activate() {
        let config = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let mut c = Controller::new(config, no_refresh()).unwrap();
        for i in 0..8u32 {
            // Alternate between two rows of the same bank.
            let row = i % 2;
            assert!(c.enqueue(Request::read(PhysicalAddress::new(0, 0, row, 0))));
        }
        c.drain();
        assert_eq!(c.stats().completed_requests, 8);
        assert_eq!(c.stats().activates, 8);
        assert_eq!(c.stats().row_conflicts, 7);
        assert_eq!(c.stats().row_empties, 1);
    }

    #[test]
    fn bank_group_interleaving_is_faster_than_same_bank_group() {
        let config = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        // Same bank group, different banks: limited by tCCD_L.
        let mut same = Controller::new(config.clone(), no_refresh()).unwrap();
        // Different bank groups: limited by tCCD_S only.
        let mut diff = Controller::new(config.clone(), no_refresh()).unwrap();
        let n = 4096u64;
        let run = |c: &mut Controller, rotate_groups: bool| {
            let mut produced = 0u64;
            while produced < n || c.pending_requests() > 0 {
                while produced < n && c.can_accept() {
                    let lane = (produced % 4) as u32;
                    let col = ((produced / 4) % 128) as u32;
                    let row = (produced / 512) as u32;
                    let addr = if rotate_groups {
                        PhysicalAddress::new(lane, 0, row, col)
                    } else {
                        PhysicalAddress::new(0, lane, row, col)
                    };
                    assert!(c.enqueue(Request::write(addr)));
                    produced += 1;
                }
                c.tick();
            }
            c.drain();
        };
        run(&mut same, false);
        run(&mut diff, true);
        assert!(
            diff.stats().elapsed_cycles < same.stats().elapsed_cycles,
            "bank-group interleaving must be faster: {} vs {}",
            diff.stats().elapsed_cycles,
            same.stats().elapsed_cycles
        );
        assert!(diff.stats().bus_utilization() > 0.9);
    }

    #[test]
    fn sequential_stream_saturates_the_bus_without_refresh() {
        let config = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let mut c = Controller::new(config.clone(), no_refresh()).unwrap();
        let mut produced = 0u64;
        let total = 4096u64;
        while produced < total || c.pending_requests() > 0 {
            while produced < total && c.can_accept() {
                let addr = config.decode_linear(produced);
                assert!(c.enqueue(Request::write(addr)));
                produced += 1;
            }
            c.tick();
        }
        c.drain();
        assert_eq!(c.stats().completed_requests, total);
        assert!(
            c.stats().bus_utilization() > 0.93,
            "sequential writes should be near peak, got {}",
            c.stats().bus_utilization()
        );
    }

    #[test]
    fn refresh_reduces_utilization_for_all_bank_mode() {
        let config = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let run = |refresh: RefreshMode| {
            let ctrl = ControllerConfig {
                refresh_mode: Some(refresh),
                ..ControllerConfig::default()
            };
            let mut c = Controller::new(config.clone(), ctrl).unwrap();
            let total = 60_000u64;
            let mut produced = 0u64;
            while produced < total || c.pending_requests() > 0 {
                while produced < total && c.can_accept() {
                    let addr = config.decode_linear(produced);
                    c.enqueue(Request::write(addr));
                    produced += 1;
                }
                c.tick();
            }
            c.drain();
            (c.stats().bus_utilization(), c.stats().refreshes_all_bank)
        };
        let (with_refresh, refreshes) = run(RefreshMode::AllBank);
        let (without_refresh, none) = run(RefreshMode::Disabled);
        assert!(refreshes > 0);
        assert_eq!(none, 0);
        assert!(without_refresh > with_refresh);
        assert!(without_refresh > 0.95);
    }

    #[test]
    fn per_bank_refresh_hides_most_of_the_cost() {
        let config = DramConfig::preset(DramStandard::Lpddr4, 4266).unwrap();
        let run = |refresh: RefreshMode| {
            let ctrl = ControllerConfig {
                refresh_mode: Some(refresh),
                ..ControllerConfig::default()
            };
            let mut c = Controller::new(config.clone(), ctrl).unwrap();
            let total = 60_000u64;
            let mut produced = 0u64;
            while produced < total || c.pending_requests() > 0 {
                while produced < total && c.can_accept() {
                    c.enqueue(Request::write(config.decode_linear(produced)));
                    produced += 1;
                }
                c.tick();
            }
            c.drain();
            c.stats().bus_utilization()
        };
        let per_bank = run(RefreshMode::PerBank);
        let all_bank = run(RefreshMode::AllBank);
        assert!(
            per_bank >= all_bank,
            "per-bank refresh should not be slower: {per_bank} vs {all_bank}"
        );
    }

    #[test]
    fn fcfs_is_not_faster_than_frfcfs() {
        let config = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let run = |policy: SchedulingPolicy| {
            let ctrl = ControllerConfig {
                scheduling: policy,
                refresh_mode: Some(RefreshMode::Disabled),
                ..ControllerConfig::default()
            };
            let mut c = Controller::new(config.clone(), ctrl).unwrap();
            // A conflict-heavy pattern: stride through rows on one bank pair.
            let total = 2_000u64;
            let mut produced = 0u64;
            while produced < total || c.pending_requests() > 0 {
                while produced < total && c.can_accept() {
                    let row = (produced % 64) as u32;
                    let bank = (produced % 2) as u32;
                    c.enqueue(Request::read(PhysicalAddress::new(0, bank, row, 0)));
                    produced += 1;
                }
                c.tick();
            }
            c.drain();
            c.stats().elapsed_cycles
        };
        assert!(run(SchedulingPolicy::FrFcfs) <= run(SchedulingPolicy::Fcfs));
    }

    #[test]
    fn closed_page_policy_precharges_idle_banks() {
        let config = DramConfig::preset(DramStandard::Ddr4, 1600).unwrap();
        let ctrl = ControllerConfig {
            page_policy: PagePolicy::Closed,
            refresh_mode: Some(RefreshMode::Disabled),
            ..ControllerConfig::default()
        };
        let mut c = Controller::new(config, ctrl).unwrap();
        c.enqueue(Request::read(PhysicalAddress::new(0, 0, 3, 0)));
        c.drain();
        // Run a few more cycles so the proactive precharge gets issued.
        for _ in 0..200 {
            c.tick();
        }
        assert!(c.bank_state(BankId(0)).is_idle());
    }

    #[test]
    fn stats_reset_preserves_bank_state() {
        let config = DramConfig::preset(DramStandard::Ddr4, 1600).unwrap();
        let mut c = Controller::new(config, no_refresh()).unwrap();
        c.enqueue(Request::write(PhysicalAddress::new(1, 1, 9, 0)));
        c.drain();
        c.reset_stats();
        assert_eq!(c.stats().completed_requests, 0);
        // The row is still open, so the next access to it is a hit.
        c.enqueue(Request::read(PhysicalAddress::new(1, 1, 9, 1)));
        c.drain();
        assert_eq!(c.stats().row_hits, 1);
    }
}
