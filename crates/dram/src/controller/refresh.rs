//! Refresh scheduling.
//!
//! Three modes are modelled:
//!
//! * [`RefreshMode::AllBank`] — a REFab command every `t_refi`, requiring all
//!   banks to be precharged (DDR3/DDR4 style).  The whole device is blocked
//!   for `t_rfc_ab`.
//! * [`RefreshMode::PerBank`] — one bank refreshed every `t_refi / banks`
//!   (LPDDR4/LPDDR5/DDR5 same-bank refresh style).  Other banks keep
//!   transferring data, so most of the refresh cost is hidden.
//! * [`RefreshMode::Disabled`] — no refresh at all.  The paper notes this is
//!   legal when the interleaver data lifetime is shorter than the refresh
//!   period (32–64 ms).

use crate::timing::TimingParams;

/// Refresh policy of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RefreshMode {
    /// All-bank refresh (REFab) every `t_refi`.
    #[default]
    AllBank,
    /// Per-bank (same-bank) refresh, rotating through banks.
    PerBank,
    /// Refresh disabled.
    Disabled,
}

/// Tracks refresh obligations over time.
#[derive(Debug, Clone)]
pub struct RefreshEngine {
    mode: RefreshMode,
    interval: u64,
    next_due: u64,
    pending: u32,
    next_bank: u32,
    total_banks: u32,
}

impl RefreshEngine {
    /// Creates a refresh engine for `total_banks` banks.
    #[must_use]
    pub fn new(mode: RefreshMode, timing: &TimingParams, total_banks: u32) -> Self {
        let interval = match mode {
            RefreshMode::AllBank => timing.t_refi.max(1),
            RefreshMode::PerBank => (timing.t_refi / u64::from(total_banks.max(1))).max(1),
            RefreshMode::Disabled => u64::MAX,
        };
        Self {
            mode,
            interval,
            next_due: interval,
            pending: 0,
            next_bank: 0,
            total_banks,
        }
    }

    /// The refresh mode.
    #[must_use]
    pub fn mode(&self) -> RefreshMode {
        self.mode
    }

    /// Updates the obligation counter for the current cycle.
    pub fn tick(&mut self, now: u64) {
        if self.mode == RefreshMode::Disabled {
            return;
        }
        while now >= self.next_due {
            self.pending += 1;
            self.next_due = self.next_due.saturating_add(self.interval);
        }
    }

    /// Number of refreshes owed right now.
    #[must_use]
    pub fn pending(&self) -> u32 {
        self.pending
    }

    /// Whether a refresh is currently owed.
    #[must_use]
    pub fn is_pending(&self) -> bool {
        self.pending > 0
    }

    /// The bank targeted by the next per-bank refresh.
    #[must_use]
    pub fn target_bank(&self) -> u32 {
        self.next_bank
    }

    /// Cycle at which the next refresh obligation arises.
    #[must_use]
    pub fn next_due(&self) -> u64 {
        self.next_due
    }

    /// Marks one owed refresh as completed.
    pub fn complete_one(&mut self) {
        debug_assert!(self.pending > 0, "completing a refresh that was not owed");
        self.pending = self.pending.saturating_sub(1);
        if self.mode == RefreshMode::PerBank && self.total_banks > 0 {
            self.next_bank = (self.next_bank + 1) % self.total_banks;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standards::{DramConfig, DramStandard};

    fn timing() -> TimingParams {
        DramConfig::preset(DramStandard::Ddr4, 3200).unwrap().timing
    }

    #[test]
    fn disabled_mode_never_pends() {
        let t = timing();
        let mut engine = RefreshEngine::new(RefreshMode::Disabled, &t, 16);
        engine.tick(u64::MAX / 2);
        assert!(!engine.is_pending());
    }

    #[test]
    fn all_bank_mode_pends_every_trefi() {
        let t = timing();
        let mut engine = RefreshEngine::new(RefreshMode::AllBank, &t, 16);
        engine.tick(t.t_refi - 1);
        assert_eq!(engine.pending(), 0);
        engine.tick(t.t_refi);
        assert_eq!(engine.pending(), 1);
        engine.tick(3 * t.t_refi);
        assert_eq!(engine.pending(), 3);
        engine.complete_one();
        assert_eq!(engine.pending(), 2);
    }

    #[test]
    fn per_bank_mode_rotates_banks_and_refreshes_more_often() {
        let t = timing();
        let mut engine = RefreshEngine::new(RefreshMode::PerBank, &t, 4);
        // Per-bank interval is a quarter of tREFI.
        engine.tick(t.t_refi);
        assert_eq!(engine.pending(), 4);
        let mut banks = Vec::new();
        for _ in 0..4 {
            banks.push(engine.target_bank());
            engine.complete_one();
        }
        assert_eq!(banks, vec![0, 1, 2, 3]);
        assert_eq!(engine.target_bank(), 0);
    }

    #[test]
    fn next_due_advances() {
        let t = timing();
        let mut engine = RefreshEngine::new(RefreshMode::AllBank, &t, 8);
        let first = engine.next_due();
        engine.tick(first);
        assert_eq!(engine.next_due(), first + t.t_refi);
    }
}
