//! Per-bank transaction queues with a shared capacity limit.

use std::collections::VecDeque;

use crate::request::Request;

/// A request waiting in a bank queue, together with scheduling metadata.
#[derive(Debug, Clone, Copy)]
pub struct QueuedRequest {
    /// Global arrival sequence number (lower = older).
    pub seq: u64,
    /// The request itself.
    pub request: Request,
    /// Set when the scheduler had to close a different row for this request.
    pub caused_conflict: bool,
    /// Set when the scheduler issued an activate for this request.
    pub caused_activate: bool,
}

/// Per-bank FIFO queues sharing one capacity budget.
///
/// Requests are served FCFS *within* a bank; the scheduler may reorder
/// *across* banks (this is the essence of FR-FCFS for streaming workloads).
#[derive(Debug, Clone)]
pub struct CommandQueues {
    queues: Vec<VecDeque<QueuedRequest>>,
    capacity: usize,
    occupancy: usize,
    next_seq: u64,
}

impl CommandQueues {
    /// Creates queues for `banks` banks with a total capacity of `capacity`
    /// outstanding requests.
    #[must_use]
    pub fn new(banks: usize, capacity: usize) -> Self {
        Self {
            queues: vec![VecDeque::new(); banks],
            capacity,
            occupancy: 0,
            next_seq: 0,
        }
    }

    /// Total number of queued requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.occupancy
    }

    /// Whether no requests are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.occupancy == 0
    }

    /// Whether another request can be accepted.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.occupancy < self.capacity
    }

    /// Number of free request slots.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.capacity - self.occupancy
    }

    /// Enqueues a request for `flat_bank`.  Returns `false` (and drops
    /// nothing — the caller keeps ownership semantics trivial because
    /// [`Request`] is `Copy`) if the shared capacity is exhausted.
    pub fn push(&mut self, flat_bank: usize, request: Request) -> bool {
        if !self.has_space() {
            return false;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queues[flat_bank].push_back(QueuedRequest {
            seq,
            request,
            caused_conflict: false,
            caused_activate: false,
        });
        self.occupancy += 1;
        true
    }

    /// Number of requests queued for `flat_bank`.
    #[must_use]
    pub fn bank_len(&self, flat_bank: usize) -> usize {
        self.queues[flat_bank].len()
    }

    /// The oldest request queued for `flat_bank`, if any.
    #[must_use]
    pub fn head(&self, flat_bank: usize) -> Option<&QueuedRequest> {
        self.queues[flat_bank].front()
    }

    /// Mutable access to the oldest request queued for `flat_bank`.
    pub fn head_mut(&mut self, flat_bank: usize) -> Option<&mut QueuedRequest> {
        self.queues[flat_bank].front_mut()
    }

    /// Removes and returns the oldest request queued for `flat_bank`.
    pub fn pop(&mut self, flat_bank: usize) -> Option<QueuedRequest> {
        let popped = self.queues[flat_bank].pop_front();
        if popped.is_some() {
            self.occupancy -= 1;
        }
        popped
    }

    /// Sequence number of the globally oldest queued request, if any.
    #[must_use]
    pub fn oldest_seq(&self) -> Option<u64> {
        self.queues
            .iter()
            .filter_map(|q| q.front().map(|r| r.seq))
            .min()
    }

    /// Iterator over bank indices that have at least one queued request.
    pub fn active_banks(&self) -> impl Iterator<Item = usize> + '_ {
        self.queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::PhysicalAddress;

    fn req(row: u32) -> Request {
        Request::write(PhysicalAddress::new(0, 0, row, 0))
    }

    #[test]
    fn capacity_is_shared_across_banks() {
        let mut q = CommandQueues::new(4, 2);
        assert!(q.push(0, req(0)));
        assert!(q.push(1, req(1)));
        assert!(!q.push(2, req(2)), "third push must be rejected");
        assert_eq!(q.len(), 2);
        assert_eq!(q.free_slots(), 0);
    }

    #[test]
    fn fifo_order_within_bank() {
        let mut q = CommandQueues::new(2, 8);
        q.push(0, req(1));
        q.push(0, req(2));
        q.push(0, req(3));
        assert_eq!(q.pop(0).unwrap().request.address.row, 1);
        assert_eq!(q.pop(0).unwrap().request.address.row, 2);
        assert_eq!(q.pop(0).unwrap().request.address.row, 3);
        assert!(q.pop(0).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn sequence_numbers_are_global_and_monotonic() {
        let mut q = CommandQueues::new(2, 8);
        q.push(0, req(0));
        q.push(1, req(0));
        q.push(0, req(0));
        assert_eq!(q.oldest_seq(), Some(0));
        q.pop(0);
        assert_eq!(q.oldest_seq(), Some(1));
        let banks: Vec<_> = q.active_banks().collect();
        assert_eq!(banks, vec![0, 1]);
    }

    #[test]
    fn pop_frees_capacity() {
        let mut q = CommandQueues::new(1, 1);
        assert!(q.push(0, req(0)));
        assert!(!q.has_space());
        q.pop(0);
        assert!(q.has_space());
        assert!(q.push(0, req(1)));
    }
}
