//! Per-bank transaction queues with a shared capacity limit.
//!
//! Storage is a single contiguous arena of queue nodes (allocated once,
//! up-front, sized to the shared capacity) threaded into intrusive per-bank
//! singly-linked lists plus a free list.  Compared to the previous
//! `Vec<VecDeque<_>>` layout this removes per-bank heap allocations from the
//! hot controller loop and keeps all queued requests in one cache-dense slab
//! regardless of how requests distribute across banks.

use crate::request::Request;

/// A request waiting in a bank queue, together with scheduling metadata.
#[derive(Debug, Clone, Copy)]
pub struct QueuedRequest {
    /// Global arrival sequence number (lower = older).
    pub seq: u64,
    /// The request itself.
    pub request: Request,
    /// Set when the scheduler had to close a different row for this request.
    pub caused_conflict: bool,
    /// Set when the scheduler issued an activate for this request.
    pub caused_activate: bool,
}

/// Sentinel index marking the end of an intrusive list.
const NIL: u32 = u32::MAX;

/// One slot in the arena: the queued request plus the intrusive link to the
/// next node in the same per-bank list (or the next free node when the slot
/// is on the free list).
#[derive(Debug, Clone, Copy)]
struct Node {
    entry: QueuedRequest,
    next: u32,
}

/// Per-bank FIFO queues sharing one capacity budget.
///
/// Requests are served FCFS *within* a bank; the scheduler may reorder
/// *across* banks (this is the essence of FR-FCFS for streaming workloads).
///
/// All nodes live in one arena sized to the shared capacity; per-bank FIFOs
/// are intrusive singly-linked lists (head + tail per bank), and recycled
/// slots go on a free list, so steady-state operation performs no heap
/// allocation at all.
#[derive(Debug, Clone)]
pub struct CommandQueues {
    /// Arena of queue nodes.  Grows lazily up to `capacity`, then slots are
    /// recycled through `free_head` forever.
    nodes: Vec<Node>,
    /// Index of the oldest queued request per bank (`NIL` when empty).
    heads: Vec<u32>,
    /// Index of the newest queued request per bank (`NIL` when empty).
    tails: Vec<u32>,
    /// Per-bank queue lengths (kept so `bank_len` stays O(1)).
    bank_lens: Vec<u32>,
    /// Head of the free list of recycled arena slots (`NIL` when none).
    free_head: u32,
    capacity: usize,
    occupancy: usize,
    next_seq: u64,
}

impl CommandQueues {
    /// Creates queues for `banks` banks with a total capacity of `capacity`
    /// outstanding requests.
    #[must_use]
    pub fn new(banks: usize, capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
            heads: vec![NIL; banks],
            tails: vec![NIL; banks],
            bank_lens: vec![0; banks],
            free_head: NIL,
            capacity,
            occupancy: 0,
            next_seq: 0,
        }
    }

    /// Total number of queued requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.occupancy
    }

    /// Whether no requests are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.occupancy == 0
    }

    /// Whether another request can be accepted.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.occupancy < self.capacity
    }

    /// Number of free request slots.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.capacity - self.occupancy
    }

    /// Enqueues a request for `flat_bank`.  Returns `false` (and drops
    /// nothing — the caller keeps ownership semantics trivial because
    /// [`Request`] is `Copy`) if the shared capacity is exhausted.
    pub fn push(&mut self, flat_bank: usize, request: Request) -> bool {
        if !self.has_space() {
            return false;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = QueuedRequest {
            seq,
            request,
            caused_conflict: false,
            caused_activate: false,
        };
        let slot = if self.free_head != NIL {
            let slot = self.free_head;
            self.free_head = self.nodes[slot as usize].next;
            self.nodes[slot as usize] = Node { entry, next: NIL };
            slot
        } else {
            debug_assert!(self.nodes.len() < self.capacity);
            self.nodes.push(Node { entry, next: NIL });
            (self.nodes.len() - 1) as u32
        };
        let tail = self.tails[flat_bank];
        if tail == NIL {
            self.heads[flat_bank] = slot;
        } else {
            self.nodes[tail as usize].next = slot;
        }
        self.tails[flat_bank] = slot;
        self.bank_lens[flat_bank] += 1;
        self.occupancy += 1;
        true
    }

    /// Number of requests queued for `flat_bank`.
    #[must_use]
    pub fn bank_len(&self, flat_bank: usize) -> usize {
        self.bank_lens[flat_bank] as usize
    }

    /// The oldest request queued for `flat_bank`, if any.
    #[must_use]
    pub fn head(&self, flat_bank: usize) -> Option<&QueuedRequest> {
        let head = self.heads[flat_bank];
        if head == NIL {
            None
        } else {
            Some(&self.nodes[head as usize].entry)
        }
    }

    /// Mutable access to the oldest request queued for `flat_bank`.
    pub fn head_mut(&mut self, flat_bank: usize) -> Option<&mut QueuedRequest> {
        let head = self.heads[flat_bank];
        if head == NIL {
            None
        } else {
            Some(&mut self.nodes[head as usize].entry)
        }
    }

    /// Removes and returns the oldest request queued for `flat_bank`.
    pub fn pop(&mut self, flat_bank: usize) -> Option<QueuedRequest> {
        let head = self.heads[flat_bank];
        if head == NIL {
            return None;
        }
        let node = self.nodes[head as usize];
        self.heads[flat_bank] = node.next;
        if node.next == NIL {
            self.tails[flat_bank] = NIL;
        }
        self.nodes[head as usize].next = self.free_head;
        self.free_head = head;
        self.bank_lens[flat_bank] -= 1;
        self.occupancy -= 1;
        Some(node.entry)
    }

    /// Sequence number of the globally oldest queued request, if any.
    #[must_use]
    pub fn oldest_seq(&self) -> Option<u64> {
        self.heads
            .iter()
            .filter(|&&h| h != NIL)
            .map(|&h| self.nodes[h as usize].entry.seq)
            .min()
    }

    /// Iterator over bank indices that have at least one queued request.
    pub fn active_banks(&self) -> impl Iterator<Item = usize> + '_ {
        self.heads
            .iter()
            .enumerate()
            .filter(|(_, &h)| h != NIL)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::PhysicalAddress;

    fn req(row: u32) -> Request {
        Request::write(PhysicalAddress::new(0, 0, row, 0))
    }

    #[test]
    fn capacity_is_shared_across_banks() {
        let mut q = CommandQueues::new(4, 2);
        assert!(q.push(0, req(0)));
        assert!(q.push(1, req(1)));
        assert!(!q.push(2, req(2)), "third push must be rejected");
        assert_eq!(q.len(), 2);
        assert_eq!(q.free_slots(), 0);
    }

    #[test]
    fn fifo_order_within_bank() {
        let mut q = CommandQueues::new(2, 8);
        q.push(0, req(1));
        q.push(0, req(2));
        q.push(0, req(3));
        assert_eq!(q.pop(0).unwrap().request.address.row, 1);
        assert_eq!(q.pop(0).unwrap().request.address.row, 2);
        assert_eq!(q.pop(0).unwrap().request.address.row, 3);
        assert!(q.pop(0).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn sequence_numbers_are_global_and_monotonic() {
        let mut q = CommandQueues::new(2, 8);
        q.push(0, req(0));
        q.push(1, req(0));
        q.push(0, req(0));
        assert_eq!(q.oldest_seq(), Some(0));
        q.pop(0);
        assert_eq!(q.oldest_seq(), Some(1));
        let banks: Vec<_> = q.active_banks().collect();
        assert_eq!(banks, vec![0, 1]);
    }

    #[test]
    fn pop_frees_capacity() {
        let mut q = CommandQueues::new(1, 1);
        assert!(q.push(0, req(0)));
        assert!(!q.has_space());
        q.pop(0);
        assert!(q.has_space());
        assert!(q.push(0, req(1)));
    }

    #[test]
    fn arena_never_grows_past_capacity_under_churn() {
        let mut q = CommandQueues::new(3, 4);
        for round in 0..100u32 {
            let bank = (round % 3) as usize;
            while q.push(bank, req(round)) {}
            assert_eq!(q.len(), 4, "capacity fully used each round");
            // Drain in a different bank order than we filled.
            for b in (0..3).rev() {
                while q.pop(b).is_some() {}
            }
            assert!(q.is_empty());
        }
        // Slots were recycled through the free list, never re-allocated.
        assert!(q.nodes.capacity() <= 4, "arena must not grow past capacity");
    }

    #[test]
    fn interleaved_banks_keep_independent_fifo_order() {
        let mut q = CommandQueues::new(2, 8);
        q.push(0, req(10));
        q.push(1, req(20));
        q.push(0, req(11));
        q.push(1, req(21));
        q.push(0, req(12));
        assert_eq!(q.bank_len(0), 3);
        assert_eq!(q.bank_len(1), 2);
        assert_eq!(q.head(0).unwrap().request.address.row, 10);
        assert_eq!(q.head(1).unwrap().request.address.row, 20);
        assert_eq!(q.pop(1).unwrap().request.address.row, 20);
        assert_eq!(q.pop(0).unwrap().request.address.row, 10);
        assert_eq!(q.pop(0).unwrap().request.address.row, 11);
        assert_eq!(q.pop(1).unwrap().request.address.row, 21);
        assert_eq!(q.pop(0).unwrap().request.address.row, 12);
        assert!(q.is_empty());
        assert_eq!(q.bank_len(0), 0);
        assert_eq!(q.bank_len(1), 0);
    }
}
