//! Read/write burst requests submitted to the memory system.

use crate::address::PhysicalAddress;

/// Direction of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Read one burst.
    Read,
    /// Write one burst.
    Write,
}

/// A single burst-granular memory request.
///
/// Requests are the unit of work handed to the [`MemorySystem`]; data payloads
/// are not modelled because only timing matters for the bandwidth study.
///
/// [`MemorySystem`]: crate::MemorySystem
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Whether the request reads or writes.
    pub kind: RequestKind,
    /// Target physical address.
    pub address: PhysicalAddress,
}

impl Request {
    /// Creates a read request.
    #[must_use]
    pub fn read(address: PhysicalAddress) -> Self {
        Self {
            kind: RequestKind::Read,
            address,
        }
    }

    /// Creates a write request.
    #[must_use]
    pub fn write(address: PhysicalAddress) -> Self {
        Self {
            kind: RequestKind::Write,
            address,
        }
    }

    /// Whether this is a write request.
    #[must_use]
    pub fn is_write(&self) -> bool {
        self.kind == RequestKind::Write
    }
}

/// A pull-driven producer of request batches — the slice-at-a-time
/// counterpart of an `Iterator<Item = Request>` front-end.
///
/// Batched trace generators implement this so the controller fill loops can
/// amortize per-request mapping work over whole slices (see
/// [`MemorySystem::run_source`](crate::MemorySystem::run_source) and
/// [`ChannelRouter::run_phase_sources`](crate::ChannelRouter::run_phase_sources)).
/// The requests produced across successive `fill` calls must form the same
/// sequence the equivalent scalar iterator would yield, so driver statistics
/// stay bit-identical between the two paths.
pub trait RequestSource {
    /// Appends the next batch of requests to `out` and returns how many were
    /// appended.
    ///
    /// `max` is a sizing hint: sources should aim for roughly `max` requests
    /// but may append more (e.g. to finish an internal chunk) or fewer.
    /// Returning `0` means the source is exhausted; a non-exhausted source
    /// must append at least one request.
    fn fill(&mut self, out: &mut Vec<Request>, max: usize) -> usize;
}

/// Adapts any request iterator into a [`RequestSource`] (each `fill` pulls
/// up to `max` items) — the bridge for scalar trace fronts.
#[derive(Debug, Clone)]
pub struct IteratorSource<I>(pub I);

impl<I: Iterator<Item = Request>> RequestSource for IteratorSource<I> {
    fn fill(&mut self, out: &mut Vec<Request>, max: usize) -> usize {
        let before = out.len();
        out.extend(self.0.by_ref().take(max));
        out.len() - before
    }
}

/// Drains a [`RequestSource`] one request at a time through an internal
/// chunk buffer.
///
/// This is how the batched sources plug into the existing saturation loops:
/// the per-element cost collapses to a buffered `Vec` read while the mapping
/// work happens in [`RequestSource::fill`]-sized slices.  Because the
/// sequence is unchanged, statistics are bit-identical to the scalar path.
#[derive(Debug)]
pub struct BufferedRequests<S> {
    source: S,
    buffer: Vec<Request>,
    position: usize,
    chunk: usize,
    exhausted: bool,
}

impl<S: RequestSource> BufferedRequests<S> {
    /// Default refill size in requests.
    pub const DEFAULT_CHUNK: usize = 4096;

    /// Wraps `source` with the default chunk size.
    #[must_use]
    pub fn new(source: S) -> Self {
        Self::with_chunk(source, Self::DEFAULT_CHUNK)
    }

    /// Wraps `source`, refilling `chunk` requests at a time (clamped to at
    /// least 1).
    #[must_use]
    pub fn with_chunk(source: S, chunk: usize) -> Self {
        Self {
            source,
            buffer: Vec::new(),
            position: 0,
            chunk: chunk.max(1),
            exhausted: false,
        }
    }
}

impl<S: RequestSource> Iterator for BufferedRequests<S> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.position == self.buffer.len() {
            if self.exhausted {
                return None;
            }
            self.buffer.clear();
            self.position = 0;
            if self.source.fill(&mut self.buffer, self.chunk) == 0 {
                self.exhausted = true;
                return None;
            }
        }
        let request = self.buffer[self.position];
        self.position += 1;
        Some(request)
    }
}

impl<S: RequestSource> std::iter::FusedIterator for BufferedRequests<S> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let a = PhysicalAddress::new(0, 0, 7, 3);
        assert!(Request::write(a).is_write());
        assert!(!Request::read(a).is_write());
        assert_eq!(Request::read(a).address, a);
    }

    fn numbered(n: u32) -> Vec<Request> {
        (0..n)
            .map(|k| Request::write(PhysicalAddress::new(0, 0, k, 0)))
            .collect()
    }

    #[test]
    fn iterator_source_fills_in_max_sized_slices() {
        let requests = numbered(10);
        let mut source = IteratorSource(requests.iter().copied());
        let mut out = Vec::new();
        assert_eq!(source.fill(&mut out, 4), 4);
        assert_eq!(source.fill(&mut out, 4), 4);
        assert_eq!(source.fill(&mut out, 4), 2);
        assert_eq!(source.fill(&mut out, 4), 0);
        assert_eq!(out, requests);
    }

    /// Serves scripted chunk sizes, then reports exhaustion (`fill`
    /// returning 0) even though more requests could exist — models a source
    /// that dries up mid-phase.
    struct ScriptedSource {
        chunks: Vec<usize>,
        next: u32,
    }

    impl RequestSource for ScriptedSource {
        fn fill(&mut self, out: &mut Vec<Request>, _max: usize) -> usize {
            match self.chunks.pop() {
                None | Some(0) => 0,
                Some(count) => {
                    for _ in 0..count {
                        out.push(Request::write(PhysicalAddress::new(0, 0, self.next, 0)));
                        self.next += 1;
                    }
                    count
                }
            }
        }
    }

    #[test]
    fn buffered_requests_terminate_cleanly_on_mid_stream_exhaustion() {
        // The source serves 5 then 3 requests, then returns 0: the adapter
        // must yield exactly those 8 in order, report exhaustion, stay
        // fused, and never call `fill` again after the first 0.
        let mut buffered = BufferedRequests::new(ScriptedSource {
            chunks: vec![3, 5], // popped back-to-front
            next: 0,
        });
        let drained: Vec<Request> = buffered.by_ref().collect();
        assert_eq!(drained, numbered(8));
        assert_eq!(buffered.next(), None, "fused after mid-stream exhaustion");
        assert_eq!(buffered.next(), None);
    }

    #[test]
    fn buffered_requests_preserve_the_sequence_for_any_chunk_size() {
        let requests = numbered(23);
        for chunk in [1usize, 2, 7, 23, 100] {
            let drained: Vec<Request> =
                BufferedRequests::with_chunk(IteratorSource(requests.iter().copied()), chunk)
                    .collect();
            assert_eq!(drained, requests, "chunk={chunk}");
        }
        let mut empty = BufferedRequests::new(IteratorSource(std::iter::empty()));
        assert_eq!(empty.next(), None);
        assert_eq!(empty.next(), None, "fused after exhaustion");
    }
}
