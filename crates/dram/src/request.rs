//! Read/write burst requests submitted to the memory system.

use crate::address::PhysicalAddress;

/// Direction of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Read one burst.
    Read,
    /// Write one burst.
    Write,
}

/// A single burst-granular memory request.
///
/// Requests are the unit of work handed to the [`MemorySystem`]; data payloads
/// are not modelled because only timing matters for the bandwidth study.
///
/// [`MemorySystem`]: crate::MemorySystem
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Whether the request reads or writes.
    pub kind: RequestKind,
    /// Target physical address.
    pub address: PhysicalAddress,
}

impl Request {
    /// Creates a read request.
    #[must_use]
    pub fn read(address: PhysicalAddress) -> Self {
        Self {
            kind: RequestKind::Read,
            address,
        }
    }

    /// Creates a write request.
    #[must_use]
    pub fn write(address: PhysicalAddress) -> Self {
        Self {
            kind: RequestKind::Write,
            address,
        }
    }

    /// Whether this is a write request.
    #[must_use]
    pub fn is_write(&self) -> bool {
        self.kind == RequestKind::Write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let a = PhysicalAddress::new(0, 0, 7, 3);
        assert!(Request::write(a).is_write());
        assert!(!Request::read(a).is_write());
        assert_eq!(Request::read(a).address, a);
    }
}
