//! A coarse DRAMPower-style energy model.
//!
//! The paper motivates the optimized mapping partly by energy: an oversized
//! (faster or wider) DRAM configuration costs more power.  This module
//! provides a simple command-counting energy estimate so that experiments can
//! report energy per transferred byte alongside bandwidth utilization.
//! The absolute numbers are indicative only.

use crate::standards::DramConfig;
use crate::stats::Stats;

/// Per-command and background energy parameters, in nanojoules and milliwatts.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyParams {
    /// Energy of one ACT + PRE pair (row cycle), in nJ.
    pub act_pre_nj: f64,
    /// Energy of one read burst, in nJ.
    pub read_nj: f64,
    /// Energy of one write burst, in nJ.
    pub write_nj: f64,
    /// Energy of one all-bank refresh, in nJ.
    pub refresh_ab_nj: f64,
    /// Energy of one per-bank refresh, in nJ.
    pub refresh_pb_nj: f64,
    /// Background (standby) power, in mW.
    pub background_mw: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        // Ballpark DDR4-class values.
        Self {
            act_pre_nj: 2.0,
            read_nj: 1.5,
            write_nj: 1.5,
            refresh_ab_nj: 50.0,
            refresh_pb_nj: 5.0,
            background_mw: 200.0,
        }
    }
}

impl EnergyParams {
    /// Representative parameters for a DRAM configuration.
    ///
    /// Low-power standards get lower background power and command energies.
    #[must_use]
    pub fn for_config(config: &DramConfig) -> Self {
        use crate::standards::DramStandard;
        let base = Self::default();
        match config.standard {
            DramStandard::Lpddr4 | DramStandard::Lpddr5 => Self {
                act_pre_nj: base.act_pre_nj * 0.6,
                read_nj: base.read_nj * 0.5,
                write_nj: base.write_nj * 0.5,
                refresh_ab_nj: base.refresh_ab_nj * 0.7,
                refresh_pb_nj: base.refresh_pb_nj * 0.7,
                background_mw: 80.0,
            },
            DramStandard::Ddr5 => Self {
                background_mw: 250.0,
                ..base
            },
            // In-package stacked DRAM: short interconnect, cheap transfers,
            // but the stack's shared logic keeps background power up.
            DramStandard::Hbm2 => Self {
                act_pre_nj: base.act_pre_nj * 0.7,
                read_nj: base.read_nj * 0.4,
                write_nj: base.write_nj * 0.4,
                background_mw: 150.0,
                ..base
            },
            // High-speed graphics I/O costs more per transferred burst.
            DramStandard::Gddr6 => Self {
                read_nj: base.read_nj * 1.4,
                write_nj: base.write_nj * 1.4,
                background_mw: 300.0,
                ..base
            },
            // Four stacked dies refresh and idle behind one interface.
            DramStandard::Ddr5Stacked => Self {
                refresh_ab_nj: base.refresh_ab_nj * 1.5,
                refresh_pb_nj: base.refresh_pb_nj * 1.5,
                background_mw: 320.0,
                ..base
            },
            _ => base,
        }
    }
}

/// Energy estimate derived from controller statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Total estimated energy in millijoules.
    pub total_mj: f64,
    /// Energy spent on row activations/precharges in millijoules.
    pub act_pre_mj: f64,
    /// Energy spent on data transfer in millijoules.
    pub rd_wr_mj: f64,
    /// Energy spent on refresh in millijoules.
    pub refresh_mj: f64,
    /// Background energy in millijoules.
    pub background_mj: f64,
    /// Energy per transferred byte in nanojoules (0 if nothing transferred).
    pub nj_per_byte: f64,
}

impl EnergyReport {
    /// Computes the energy estimate for `stats` gathered on `config`.
    #[must_use]
    pub fn from_stats(stats: &Stats, config: &DramConfig, params: &EnergyParams) -> Self {
        let act_pre_mj = stats.activates as f64 * params.act_pre_nj * 1e-6;
        let rd_wr_mj = (stats.read_bursts as f64 * params.read_nj
            + stats.write_bursts as f64 * params.write_nj)
            * 1e-6;
        let refresh_mj = (stats.refreshes_all_bank as f64 * params.refresh_ab_nj
            + stats.refreshes_per_bank as f64 * params.refresh_pb_nj)
            * 1e-6;
        let seconds = stats.elapsed_cycles as f64 / (config.clock_mhz() * 1e6);
        let background_mj = params.background_mw * seconds;
        let total_mj = act_pre_mj + rd_wr_mj + refresh_mj + background_mj;
        let bytes = (stats.read_bursts + stats.write_bursts) as f64
            * f64::from(config.geometry.burst_bytes());
        let nj_per_byte = if bytes > 0.0 {
            total_mj * 1e6 / bytes
        } else {
            0.0
        };
        Self {
            total_mj,
            act_pre_mj,
            rd_wr_mj,
            refresh_mj,
            background_mj,
            nj_per_byte,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standards::{DramConfig, DramStandard};

    fn stats() -> Stats {
        Stats {
            elapsed_cycles: 1_000_000,
            data_bus_busy_cycles: 900_000,
            completed_requests: 225_000,
            read_bursts: 100_000,
            write_bursts: 125_000,
            activates: 2_000,
            precharges: 2_000,
            refreshes_all_bank: 100,
            ..Stats::default()
        }
    }

    #[test]
    fn energy_components_sum_to_total() {
        let config = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let report = EnergyReport::from_stats(&stats(), &config, &EnergyParams::default());
        let sum = report.act_pre_mj + report.rd_wr_mj + report.refresh_mj + report.background_mj;
        assert!((report.total_mj - sum).abs() < 1e-9);
        assert!(report.total_mj > 0.0);
        assert!(report.nj_per_byte > 0.0);
    }

    #[test]
    fn lpddr_presets_use_lower_background_power() {
        let ddr4 = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let lp = DramConfig::preset(DramStandard::Lpddr4, 4266).unwrap();
        assert!(
            EnergyParams::for_config(&lp).background_mw
                < EnergyParams::for_config(&ddr4).background_mw
        );
    }

    #[test]
    fn zero_transfer_reports_zero_energy_per_byte() {
        let config = DramConfig::preset(DramStandard::Ddr3, 800).unwrap();
        let report = EnergyReport::from_stats(&Stats::default(), &config, &EnergyParams::default());
        assert_eq!(report.nj_per_byte, 0.0);
    }

    #[test]
    fn more_activates_cost_more_energy() {
        let config = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let params = EnergyParams::default();
        let base = EnergyReport::from_stats(&stats(), &config, &params);
        let mut hot = stats();
        hot.activates *= 10;
        let hot_report = EnergyReport::from_stats(&hot, &config, &params);
        assert!(hot_report.total_mj > base.total_mj);
    }
}
