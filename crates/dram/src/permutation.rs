//! Generic bit-permutation address mappings.
//!
//! The three [`DecodeScheme`]s slice a linear burst index into
//! (rank, bank group, bank, row, column) fields in a *fixed* order.  This
//! module generalizes that idea: a [`BitPermutation`] assigns **every single
//! bit** of the linear address to one of the six address fields (channel,
//! rank, bank group, bank, row, column), so the full design space of
//! power-of-two DRAM address mappings becomes a searchable set of
//! permutations rather than three hand-picked layouts.  A
//! [`PermutationMapping`] decodes linear addresses through such a
//! permutation, with a shift/mask fast path whenever every field occupies a
//! contiguous bit run (which covers all three classic schemes) and a
//! bit-gather path for arbitrary permutations.
//!
//! Every [`DecodeScheme`] is expressible as a specific permutation via
//! [`BitPermutation::for_scheme`]; the equivalence against
//! [`AddressDecoder`](crate::AddressDecoder) is pinned by tests in this module and by property
//! tests in `tbi_interleaver`.

use crate::address::{DecodeScheme, PhysicalAddress};
use crate::batch::{AddressBatch, AddressLanesMut};
use crate::error::ConfigError;
use crate::geometry::{ChannelTopology, DeviceGeometry};

/// Maximum number of linear-address bits a [`BitPermutation`] can describe.
///
/// The largest modelled subsystem (64 channels × 8 ranks × 2^17 rows ×
/// 32 banks × 128 columns) needs 38 bits; 48 leaves headroom for custom
/// geometries while keeping the permutation `Copy`.
pub const MAX_PERMUTATION_BITS: usize = 48;

/// One destination field of a linear-address bit.
///
/// The single-letter codes are used by the compact textual form of a
/// [`BitPermutation`] (see its `Display`/`FromStr` implementations):
/// `H` channel, `K` rank, `G` bank group, `B` bank, `R` row, `C` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AddressField {
    /// Channel index bit (`H`, for c*H*annel — `C` names the column).
    Channel,
    /// Rank index bit (`K`, matching the `K<rank>` display of
    /// [`PhysicalAddress`]).
    Rank,
    /// Bank-group index bit (`G`).
    BankGroup,
    /// Bank-within-group index bit (`B`).
    Bank,
    /// Row index bit (`R`).
    Row,
    /// Column index bit (`C`).
    Column,
}

impl AddressField {
    /// All six fields in canonical order (channel, rank, bank group, bank,
    /// row, column).
    pub const ALL: [AddressField; 6] = [
        AddressField::Channel,
        AddressField::Rank,
        AddressField::BankGroup,
        AddressField::Bank,
        AddressField::Row,
        AddressField::Column,
    ];

    /// The single-letter code used in the textual permutation form.
    #[must_use]
    pub fn code(self) -> char {
        match self {
            AddressField::Channel => 'H',
            AddressField::Rank => 'K',
            AddressField::BankGroup => 'G',
            AddressField::Bank => 'B',
            AddressField::Row => 'R',
            AddressField::Column => 'C',
        }
    }

    /// Parses a single-letter code (case-insensitive).
    #[must_use]
    pub fn from_code(code: char) -> Option<Self> {
        match code.to_ascii_uppercase() {
            'H' => Some(AddressField::Channel),
            'K' => Some(AddressField::Rank),
            'G' => Some(AddressField::BankGroup),
            'B' => Some(AddressField::Bank),
            'R' => Some(AddressField::Row),
            'C' => Some(AddressField::Column),
            _ => None,
        }
    }

    fn index(self) -> usize {
        match self {
            AddressField::Channel => 0,
            AddressField::Rank => 1,
            AddressField::BankGroup => 2,
            AddressField::Bank => 3,
            AddressField::Row => 4,
            AddressField::Column => 5,
        }
    }
}

/// An assignment of every linear-address bit to an [`AddressField`].
///
/// Bit 0 of the slice is the least-significant linear bit.  The *k*-th bit
/// assigned to a field (scanning LSB→MSB) becomes bit *k* of that field, so
/// a permutation with contiguous per-field runs is exactly a classic
/// shift/mask decode chain.  The type is `Copy` (a fixed array), so it can
/// ride inside [`MappingKind`](https://docs.rs/tbi_interleaver)-style enums
/// and hash maps without allocation.
///
/// The textual form lists the codes **MSB-first** (like a binary number):
/// `"RRCCBBGG"` is a 8-bit space with bank-group bits lowest.
///
/// # Examples
///
/// ```
/// use tbi_dram::{AddressField, BitPermutation};
///
/// let p: BitPermutation = "RRCCBBGG".parse()?;
/// assert_eq!(p.total_bits(), 8);
/// assert_eq!(p.width_of(AddressField::Row), 2);
/// assert_eq!(p.to_string(), "RRCCBBGG");
/// // Swapping two bit positions yields a neighbouring design point.
/// let q = p.with_swap(0, 7);
/// assert_eq!(q.to_string(), "GRCCBBGR");
/// # Ok::<(), tbi_dram::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitPermutation {
    /// Field of each linear bit, LSB-first; entries at `len..` are padding.
    fields: [AddressField; MAX_PERMUTATION_BITS],
    len: u8,
}

impl BitPermutation {
    /// Creates a permutation from the per-bit field assignment (LSB-first).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidGeometry`] if `fields` is empty or
    /// longer than [`MAX_PERMUTATION_BITS`].
    pub fn new(fields: &[AddressField]) -> Result<Self, ConfigError> {
        if fields.is_empty() || fields.len() > MAX_PERMUTATION_BITS {
            return Err(ConfigError::InvalidGeometry {
                field: "permutation",
                reason: format!(
                    "permutation must cover 1..={MAX_PERMUTATION_BITS} bits, got {}",
                    fields.len()
                ),
            });
        }
        let mut array = [AddressField::Row; MAX_PERMUTATION_BITS];
        array[..fields.len()].copy_from_slice(fields);
        Ok(Self {
            fields: array,
            len: fields.len() as u8,
        })
    }

    /// The permutation expressing `scheme` on `geometry` scaled out to
    /// `topology` — the exact bit layout of
    /// [`AddressDecoder::with_ranks`](crate::AddressDecoder::with_ranks)
    /// with the channel bits spliced in at the very bottom of the linear
    /// space (`channel = linear mod channels`, the classic channel-
    /// interleaved controller mapping).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidGeometry`] if any sliced dimension is
    /// not a power of two.
    pub fn for_scheme(
        scheme: DecodeScheme,
        geometry: &DeviceGeometry,
        topology: ChannelTopology,
    ) -> Result<Self, ConfigError> {
        let w = FieldWidths::for_subsystem(geometry, topology)?;
        let mut fields = Vec::with_capacity(w.total() as usize);
        let mut run = |field: AddressField, bits: u32| {
            fields.extend(std::iter::repeat(field).take(bits as usize));
        };
        run(AddressField::Channel, w.channel);
        match scheme {
            DecodeScheme::RowBankBankGroupColumn => {
                run(AddressField::Column, w.column);
                run(AddressField::BankGroup, w.bank_group);
                run(AddressField::Bank, w.bank);
                run(AddressField::Rank, w.rank);
                run(AddressField::Row, w.row);
            }
            DecodeScheme::RowColumnBankBankGroup => {
                run(AddressField::BankGroup, w.bank_group);
                run(AddressField::Bank, w.bank);
                run(AddressField::Rank, w.rank);
                run(AddressField::Column, w.column);
                run(AddressField::Row, w.row);
            }
            DecodeScheme::BankBankGroupRowColumn => {
                run(AddressField::Column, w.column);
                run(AddressField::Row, w.row);
                run(AddressField::BankGroup, w.bank_group);
                run(AddressField::Bank, w.bank);
                run(AddressField::Rank, w.rank);
            }
        }
        Self::new(&fields)
    }

    /// The per-bit field assignment, LSB-first.
    #[must_use]
    pub fn fields(&self) -> &[AddressField] {
        &self.fields[..self.len as usize]
    }

    /// Number of linear-address bits the permutation covers.
    #[must_use]
    pub fn total_bits(&self) -> u32 {
        u32::from(self.len)
    }

    /// Number of bits assigned to `field`.
    #[must_use]
    pub fn width_of(&self, field: AddressField) -> u32 {
        self.fields().iter().filter(|&&f| f == field).count() as u32
    }

    /// Returns a copy with the fields of bit positions `a` and `b` swapped —
    /// the neighbourhood move of the mapping search.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    #[must_use]
    pub fn with_swap(mut self, a: usize, b: usize) -> Self {
        let len = self.len as usize;
        assert!(a < len && b < len, "swap ({a},{b}) outside {len} bits");
        self.fields.swap(a, b);
        self
    }

    /// Checks that the per-field widths match one rank of `geometry` scaled
    /// out to `topology` (all dimensions must be powers of two).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidGeometry`] naming the mismatched field.
    pub fn validate_for(
        &self,
        geometry: &DeviceGeometry,
        topology: ChannelTopology,
    ) -> Result<(), ConfigError> {
        let w = FieldWidths::for_subsystem(geometry, topology)?;
        for (field, expected) in [
            (AddressField::Channel, w.channel),
            (AddressField::Rank, w.rank),
            (AddressField::BankGroup, w.bank_group),
            (AddressField::Bank, w.bank),
            (AddressField::Row, w.row),
            (AddressField::Column, w.column),
        ] {
            let got = self.width_of(field);
            if got != expected {
                return Err(ConfigError::InvalidGeometry {
                    field: "permutation",
                    reason: format!(
                        "field {field:?} has {got} bits but the subsystem needs {expected}"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Textual form: field codes MSB-first (see [`AddressField::code`]).
impl std::fmt::Display for BitPermutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for field in self.fields().iter().rev() {
            f.write_fmt(format_args!("{}", field.code()))?;
        }
        Ok(())
    }
}

impl std::str::FromStr for BitPermutation {
    type Err = ConfigError;

    /// Parses the MSB-first code string emitted by `Display`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut fields = Vec::with_capacity(s.len());
        for c in s.chars().rev() {
            fields.push(AddressField::from_code(c).ok_or_else(|| {
                ConfigError::InvalidGeometry {
                    field: "permutation",
                    reason: format!("unknown field code `{c}` (expected one of H K G B R C)"),
                }
            })?);
        }
        Self::new(&fields)
    }
}

/// Maximum number of [`FoldStep`]s an [`XorFold`] can hold.
///
/// Two steps already express the paper's optimized diagonal (bank folded
/// with the row-tile bits on each phase side); four leaves room for the
/// portfolio search to stack boundary corrections while keeping the fold
/// `Copy`.
pub const MAX_FOLD_STEPS: usize = 4;

/// The combining operator of one [`FoldStep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FoldOp {
    /// `target ^= value` — the classic bank-XOR trick; self-inverse.
    Xor,
    /// `target = (target + value) mod 2^width` — the additive diagonal of
    /// the paper's optimized scheme (`bank = (tile_i + tile_j) mod banks`);
    /// inverted by modular subtraction.
    Add,
}

impl FoldOp {
    /// The operator code used in the textual fold form (`^` or `+`).
    #[must_use]
    pub fn code(self) -> char {
        match self {
            FoldOp::Xor => '^',
            FoldOp::Add => '+',
        }
    }

    /// Parses an operator code.
    #[must_use]
    pub fn from_code(code: char) -> Option<Self> {
        match code {
            '^' => Some(FoldOp::Xor),
            '+' => Some(FoldOp::Add),
            _ => None,
        }
    }
}

/// One fold: `target op= (source >> shift) & (2^width(target) - 1)`,
/// applied to the decoded field values after the bit permutation.
///
/// Because the step only rewrites `target` (and `target != source`, enforced
/// by [`XorFold::new`]), it is a bijection on the six-field state for either
/// operator: XOR is self-inverse and ADD inverts by modular subtraction.
///
/// The textual form is `<target><op><source><shift>`, e.g. `B^R7` (bank
/// XOR-folded with row bits 7..) or `B+R2` (bank plus row bits 2..,
/// mod the bank width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FoldStep {
    /// Field being rewritten.
    pub target: AddressField,
    /// Field supplying the folded value (left unchanged).
    pub source: AddressField,
    /// Right-shift applied to the source value before masking.
    pub shift: u8,
    /// Combining operator.
    pub op: FoldOp,
}

impl FoldStep {
    /// Canonical padding entry for unused slots (never applied; `target ==
    /// source` is rejected for real steps, so padding is unambiguous).
    const PAD: FoldStep = FoldStep {
        target: AddressField::Row,
        source: AddressField::Row,
        shift: 0,
        op: FoldOp::Xor,
    };
}

impl std::fmt::Display for FoldStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            self.target.code(),
            self.op.code(),
            self.source.code(),
            self.shift
        )
    }
}

/// A short sequence of [`FoldStep`]s layered on top of a [`BitPermutation`]
/// — the "hybrid" half of the searchable mapping family.
///
/// Pure bit permutations cannot express the paper's optimized diagonal
/// (`bank = (tile_i + tile_j) mod banks`) on standards without bank-group
/// bits (DDR3, LPDDR4); a fold of the bank field with shifted row/column
/// bits can.  Each step is a bijection on the decoded field values, so the
/// composite `permutation ∘ folds` mapping stays a bijection and keeps an
/// exact inverse (steps inverted in reverse order).
///
/// The type is `Copy` (fixed array + length), so it rides inside mapping
/// enums and hash maps exactly like [`BitPermutation`].  The textual form
/// joins step forms with `,` (`"B^R7,G+C2"`); the identity fold is the
/// empty string.
///
/// # Examples
///
/// ```
/// use tbi_dram::{AddressField, FoldOp, FoldStep, XorFold};
///
/// let fold = XorFold::new(&[FoldStep {
///     target: AddressField::Bank,
///     source: AddressField::Row,
///     shift: 7,
///     op: FoldOp::Xor,
/// }])?;
/// assert_eq!(fold.to_string(), "B^R7");
/// assert_eq!(fold.to_string().parse::<XorFold>()?, fold);
/// assert!(XorFold::identity().is_identity());
/// # Ok::<(), tbi_dram::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XorFold {
    /// Steps applied in order after decode; entries at `len..` are padding.
    steps: [FoldStep; MAX_FOLD_STEPS],
    len: u8,
}

impl XorFold {
    /// The identity fold (no steps) — plain bit-permutation behaviour.
    #[must_use]
    pub fn identity() -> Self {
        Self {
            steps: [FoldStep::PAD; MAX_FOLD_STEPS],
            len: 0,
        }
    }

    /// Creates a fold from `steps`, applied in order.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidGeometry`] if there are more than
    /// [`MAX_FOLD_STEPS`] steps or any step folds a field with itself
    /// (which would not be a bijection).
    pub fn new(steps: &[FoldStep]) -> Result<Self, ConfigError> {
        if steps.len() > MAX_FOLD_STEPS {
            return Err(ConfigError::InvalidGeometry {
                field: "fold",
                reason: format!("at most {MAX_FOLD_STEPS} fold steps, got {}", steps.len()),
            });
        }
        for step in steps {
            if step.target == step.source {
                return Err(ConfigError::InvalidGeometry {
                    field: "fold",
                    reason: format!("step {step} folds a field with itself"),
                });
            }
        }
        let mut array = [FoldStep::PAD; MAX_FOLD_STEPS];
        array[..steps.len()].copy_from_slice(steps);
        Ok(Self {
            steps: array,
            len: steps.len() as u8,
        })
    }

    /// The steps, in application order.
    #[must_use]
    pub fn steps(&self) -> &[FoldStep] {
        &self.steps[..self.len as usize]
    }

    /// Whether this is the identity fold.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.len == 0
    }

    /// Returns a copy with `step` appended — a neighbourhood move of the
    /// portfolio search.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidGeometry`] when full or when the step
    /// is degenerate (see [`XorFold::new`]).
    pub fn with_step(&self, step: FoldStep) -> Result<Self, ConfigError> {
        let mut steps: Vec<FoldStep> = self.steps().to_vec();
        steps.push(step);
        Self::new(&steps)
    }

    /// Returns a copy with the last step removed (identity stays identity).
    #[must_use]
    pub fn without_last(&self) -> Self {
        let mut copy = *self;
        if copy.len > 0 {
            copy.len -= 1;
            copy.steps[copy.len as usize] = FoldStep::PAD;
        }
        copy
    }

    /// Checks the fold against `permutation`: every step's target and
    /// source must have at least one bit, and the shift must leave at
    /// least one source bit in range (otherwise the step is dead weight).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidGeometry`] naming the offending step.
    pub fn validate_for(&self, permutation: &BitPermutation) -> Result<(), ConfigError> {
        for step in self.steps() {
            let target_width = permutation.width_of(step.target);
            let source_width = permutation.width_of(step.source);
            if target_width == 0 || source_width == 0 {
                return Err(ConfigError::InvalidGeometry {
                    field: "fold",
                    reason: format!("step {step} touches a zero-width field"),
                });
            }
            if u32::from(step.shift) >= source_width {
                return Err(ConfigError::InvalidGeometry {
                    field: "fold",
                    reason: format!("step {step} shifts past the {source_width}-bit source field"),
                });
            }
        }
        Ok(())
    }
}

/// Textual form: step forms joined by `,`; identity is empty.
impl std::fmt::Display for XorFold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (index, step) in self.steps().iter().enumerate() {
            if index > 0 {
                f.write_str(",")?;
            }
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for XorFold {
    type Err = ConfigError;

    /// Parses the comma-joined step string emitted by `Display`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(Self::identity());
        }
        let invalid = |reason: String| ConfigError::InvalidGeometry {
            field: "fold",
            reason,
        };
        let mut steps = Vec::new();
        for part in s.split(',') {
            let mut chars = part.chars();
            let target = chars
                .next()
                .and_then(AddressField::from_code)
                .ok_or_else(|| invalid(format!("bad fold target in `{part}`")))?;
            let op = chars
                .next()
                .and_then(FoldOp::from_code)
                .ok_or_else(|| invalid(format!("bad fold operator in `{part}`")))?;
            let source = chars
                .next()
                .and_then(AddressField::from_code)
                .ok_or_else(|| invalid(format!("bad fold source in `{part}`")))?;
            let shift: u8 = chars
                .as_str()
                .parse()
                .map_err(|_| invalid(format!("bad fold shift in `{part}`")))?;
            steps.push(FoldStep {
                target,
                source,
                shift,
                op,
            });
        }
        Self::new(&steps)
    }
}

/// log2 widths of the six fields for a subsystem.
#[derive(Debug, Clone, Copy)]
struct FieldWidths {
    channel: u32,
    rank: u32,
    bank_group: u32,
    bank: u32,
    row: u32,
    column: u32,
}

impl FieldWidths {
    fn for_subsystem(
        geometry: &DeviceGeometry,
        topology: ChannelTopology,
    ) -> Result<Self, ConfigError> {
        let log2 = |field: &'static str, value: u32| -> Result<u32, ConfigError> {
            if value == 0 || !value.is_power_of_two() {
                return Err(ConfigError::InvalidGeometry {
                    field,
                    reason: format!(
                        "{value} must be a non-zero power of two for bit-permutation mappings"
                    ),
                });
            }
            Ok(value.trailing_zeros())
        };
        Ok(Self {
            channel: log2("channels", topology.channels)?,
            rank: log2("ranks", topology.ranks)?,
            bank_group: log2("bank_groups", geometry.bank_groups)?,
            bank: log2("banks_per_group", geometry.banks_per_group)?,
            row: log2("rows", geometry.rows)?,
            column: log2("columns_per_row", geometry.columns_per_row)?,
        })
    }

    fn total(&self) -> u32 {
        self.channel + self.rank + self.bank_group + self.bank + self.row + self.column
    }
}

/// How a [`PermutationMapping`] extracts its fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DecodePlan {
    /// Every field occupies one contiguous ascending bit run: six shifts and
    /// masks, exactly the cost of the classic decode chains.
    ShiftMask { shift: [u8; 6], width: [u8; 6] },
    /// Arbitrary permutation: per-field source-bit masks, gathered bit by
    /// bit (one `trailing_zeros` loop per field).
    Gather { masks: [u64; 6] },
}

/// One contiguous run of linear-address bits feeding an address field:
/// `field |= ((linear >> src) & ((1 << width) - 1)) << dst`.
///
/// This is the portable (stable-Rust, u64-scalar) equivalent of one `pdep`
/// deposit step.  A field whose source bits form a single contiguous run
/// needs exactly one step; an arbitrary permutation needs one step per run,
/// and the runs of all six fields partition the covered bits, so the whole
/// decode never exceeds [`MAX_PERMUTATION_BITS`] steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct ScatterStep {
    /// Source shift: position of the run's lowest bit in the linear address.
    src: u8,
    /// Destination shift: position of the run's lowest bit in the field.
    dst: u8,
    /// Run width in bits (always ≥ 1 for stored steps).
    width: u8,
}

/// Precomputed per-field scatter tables: the batched decode plan.
///
/// `ranges[field]` indexes the flat `steps` array, so the whole plan stays
/// `Copy` (no allocation) while fields own a variable number of runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScatterPlan {
    steps: [ScatterStep; MAX_PERMUTATION_BITS],
    /// Per-field `[start, end)` ranges into `steps`, in
    /// [`AddressField::index`] order.
    ranges: [(u8, u8); 6],
}

impl ScatterPlan {
    /// Decomposes each field's source-bit mask into maximal contiguous runs.
    fn build(masks: &[u64; 6]) -> Self {
        let mut steps = [ScatterStep::default(); MAX_PERMUTATION_BITS];
        let mut ranges = [(0u8, 0u8); 6];
        let mut next = 0u8;
        for (field, &mask) in masks.iter().enumerate() {
            let start = next;
            let mut remaining = mask;
            let mut dst = 0u8;
            while remaining != 0 {
                let src = remaining.trailing_zeros() as u8;
                let width = (remaining >> src).trailing_ones() as u8;
                steps[next as usize] = ScatterStep { src, dst, width };
                next += 1;
                dst += width;
                remaining &= !(((1u64 << width) - 1) << src);
            }
            ranges[field] = (start, next);
        }
        Self { steps, ranges }
    }

    /// The steps of `field` (by [`AddressField::index`]).
    fn field_steps(&self, field: usize) -> &[ScatterStep] {
        let (start, end) = self.ranges[field];
        &self.steps[start as usize..end as usize]
    }

    /// Total number of steps across all six fields.
    fn segments(&self) -> u32 {
        u32::from(self.ranges.iter().map(|&(s, e)| e - s).sum::<u8>())
    }
}

/// Decodes linear burst indices through a [`BitPermutation`].
///
/// This is the searchable generalization of [`AddressDecoder`](crate::AddressDecoder): where the
/// decoder offers three fixed bit layouts, the permutation mapping accepts
/// any assignment of linear bits to (channel, rank, bank group, bank, row,
/// column).  Decoding is a bijection on the covered bit width, so distinct
/// linear indices always produce distinct `(channel, address)` pairs.
///
/// # Examples
///
/// ```
/// use tbi_dram::{
///     AddressDecoder, BitPermutation, ChannelTopology, DecodeScheme, DeviceGeometry,
///     PermutationMapping,
/// };
///
/// let geometry = DeviceGeometry {
///     bank_groups: 4,
///     banks_per_group: 4,
///     rows: 1 << 16,
///     columns_per_row: 128,
///     burst_length: 8,
///     bus_width_bits: 64,
/// };
/// let scheme = DecodeScheme::RowColumnBankBankGroup;
/// let permutation =
///     BitPermutation::for_scheme(scheme, &geometry, ChannelTopology::default())?;
/// let mapping = PermutationMapping::new(geometry, ChannelTopology::default(), permutation)?;
/// // The scheme's permutation form decodes bit-identically to the decoder.
/// let decoder = AddressDecoder::new(geometry, scheme);
/// for linear in [0u64, 1, 12345, 1 << 20] {
///     assert_eq!(mapping.decode(linear), (0, decoder.decode(linear)));
///     assert_eq!(mapping.encode(0, decoder.decode(linear)), linear);
/// }
/// # Ok::<(), tbi_dram::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermutationMapping {
    geometry: DeviceGeometry,
    topology: ChannelTopology,
    permutation: BitPermutation,
    plan: DecodePlan,
    scatter: ScatterPlan,
    /// Field folds applied after decode (identity for plain permutations).
    fold: XorFold,
    /// Precomputed `2^width(target) - 1` per fold step.
    fold_masks: [u32; MAX_FOLD_STEPS],
}

impl PermutationMapping {
    /// Creates a mapping for `permutation` on `geometry` scaled out to
    /// `topology`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidGeometry`] if the permutation's field
    /// widths do not match the subsystem or a dimension is not a power of
    /// two.
    pub fn new(
        geometry: DeviceGeometry,
        topology: ChannelTopology,
        permutation: BitPermutation,
    ) -> Result<Self, ConfigError> {
        Self::with_fold(geometry, topology, permutation, XorFold::identity())
    }

    /// Creates a mapping that applies `fold` to the decoded field values of
    /// `permutation` — the hybrid permutation+fold family.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidGeometry`] if the permutation does not
    /// fit the subsystem (see [`PermutationMapping::new`]) or the fold
    /// touches a zero-width field / shifts past its source (see
    /// [`XorFold::validate_for`]).
    pub fn with_fold(
        geometry: DeviceGeometry,
        topology: ChannelTopology,
        permutation: BitPermutation,
        fold: XorFold,
    ) -> Result<Self, ConfigError> {
        permutation.validate_for(&geometry, topology)?;
        fold.validate_for(&permutation)?;
        let mut masks = [0u64; 6];
        for (bit, field) in permutation.fields().iter().enumerate() {
            masks[field.index()] |= 1u64 << bit;
        }
        let mut fold_masks = [0u32; MAX_FOLD_STEPS];
        for (index, step) in fold.steps().iter().enumerate() {
            fold_masks[index] = (1u32 << permutation.width_of(step.target)) - 1;
        }
        Ok(Self {
            geometry,
            topology,
            permutation,
            plan: Self::plan(&permutation),
            scatter: ScatterPlan::build(&masks),
            fold,
            fold_masks,
        })
    }

    /// Builds the decode plan: shift/mask when every field's source bits are
    /// contiguous, per-field gather masks otherwise.
    fn plan(permutation: &BitPermutation) -> DecodePlan {
        let mut masks = [0u64; 6];
        for (bit, field) in permutation.fields().iter().enumerate() {
            masks[field.index()] |= 1u64 << bit;
        }
        let contiguous = masks.iter().all(|&mask| {
            // A contiguous run of ones (or an empty mask) stays a run after
            // shifting away its trailing zeros.
            mask == 0 || {
                let run = mask >> mask.trailing_zeros();
                (run & (run + 1)) == 0
            }
        });
        if contiguous {
            let mut shift = [0u8; 6];
            let mut width = [0u8; 6];
            for (index, &mask) in masks.iter().enumerate() {
                if mask != 0 {
                    shift[index] = mask.trailing_zeros() as u8;
                    width[index] = mask.count_ones() as u8;
                }
            }
            DecodePlan::ShiftMask { shift, width }
        } else {
            DecodePlan::Gather { masks }
        }
    }

    /// The permutation this mapping decodes through.
    #[must_use]
    pub fn permutation(&self) -> &BitPermutation {
        &self.permutation
    }

    /// The fold applied after decode (identity for plain permutations).
    #[must_use]
    pub fn fold(&self) -> &XorFold {
        &self.fold
    }

    /// The device geometry of one rank of one channel.
    #[must_use]
    pub fn geometry(&self) -> &DeviceGeometry {
        &self.geometry
    }

    /// The channel/rank topology the permutation spans.
    #[must_use]
    pub fn topology(&self) -> ChannelTopology {
        self.topology
    }

    /// Whether decoding takes the shift/mask fast path (true whenever every
    /// field occupies a contiguous bit run — all three classic schemes do).
    #[must_use]
    pub fn is_shift_mask(&self) -> bool {
        matches!(self.plan, DecodePlan::ShiftMask { .. })
    }

    /// Decodes a linear burst index into `(channel, address)`.
    ///
    /// Bits above [`BitPermutation::total_bits`] are ignored (the decode
    /// wraps, mirroring [`AddressDecoder::decode`](crate::AddressDecoder::decode)).
    #[must_use]
    pub fn decode(&self, linear: u64) -> (u32, PhysicalAddress) {
        let mut fields = match self.plan {
            DecodePlan::ShiftMask { shift, width } => {
                let mut out = [0u32; 6];
                for index in 0..6 {
                    out[index] = ((linear >> shift[index]) & ((1u64 << width[index]) - 1)) as u32;
                }
                out
            }
            DecodePlan::Gather { masks } => {
                let mut out = [0u32; 6];
                for (index, &mask) in masks.iter().enumerate() {
                    let mut remaining = mask;
                    let mut value = 0u64;
                    let mut dst = 0u32;
                    while remaining != 0 {
                        let src = remaining.trailing_zeros();
                        value |= ((linear >> src) & 1) << dst;
                        dst += 1;
                        remaining &= remaining - 1;
                    }
                    out[index] = value as u32;
                }
                out
            }
        };
        for (index, step) in self.fold.steps().iter().enumerate() {
            let mask = self.fold_masks[index];
            let value = (fields[step.source.index()] >> step.shift) & mask;
            let target = &mut fields[step.target.index()];
            *target = match step.op {
                FoldOp::Xor => *target ^ value,
                FoldOp::Add => target.wrapping_add(value) & mask,
            };
        }
        (
            fields[AddressField::Channel.index()],
            PhysicalAddress {
                rank: fields[AddressField::Rank.index()],
                bank_group: fields[AddressField::BankGroup.index()],
                bank: fields[AddressField::Bank.index()],
                row: fields[AddressField::Row.index()],
                column: fields[AddressField::Column.index()],
            },
        )
    }

    /// Number of scatter steps (contiguous source-bit runs summed over all
    /// six fields) the batched decode executes per element.
    ///
    /// This is a deterministic instruction-count proxy: a contiguous
    /// permutation costs one step per non-empty field (exactly the classic
    /// shift/mask chains), and every extra run added by bit swaps costs one
    /// more shift/mask/OR.  The `mapgen_speed` benchmark records it so
    /// mapping-kernel regressions are caught without wall-clock noise.
    #[must_use]
    pub fn scatter_segments(&self) -> u32 {
        self.scatter.segments()
    }

    /// Decodes a slice of linear burst indices into per-field lanes, one
    /// tight shift/mask/OR loop per scatter step (see
    /// [`PermutationMapping::decode_batch`]).
    ///
    /// Lanes a field does not cover are zeroed.  Results are bit-identical
    /// to per-element [`PermutationMapping::decode`].
    ///
    /// # Panics
    ///
    /// Panics if any lane length differs from `linear.len()`.
    pub fn decode_slice(&self, linear: &[u64], lanes: AddressLanesMut<'_>) {
        let AddressLanesMut {
            channel,
            rank,
            bank_group,
            bank,
            row,
            column,
        } = lanes;
        let mut out = [channel, rank, bank_group, bank, row, column];
        for (field, lane) in out.iter_mut().enumerate() {
            assert_eq!(lane.len(), linear.len(), "lane length mismatch");
            let mut steps = self.scatter.field_steps(field).iter();
            match steps.next() {
                None => lane.fill(0),
                Some(first) => {
                    // First run assigns (no dependency on prior lane
                    // contents), later runs OR in — each a straight-line
                    // loop over the slice that the compiler vectorizes.
                    let mask = (1u64 << first.width) - 1;
                    for (value, &l) in lane.iter_mut().zip(linear) {
                        *value = (((l >> first.src) & mask) as u32) << first.dst;
                    }
                    for step in steps {
                        let mask = (1u64 << step.width) - 1;
                        for (value, &l) in lane.iter_mut().zip(linear) {
                            *value |= (((l >> step.src) & mask) as u32) << step.dst;
                        }
                    }
                }
            }
        }
        // Fold passes: one straight-line loop per step over the target
        // lane, reading the (distinct) source lane — still vectorizable.
        for (index, step) in self.fold.steps().iter().enumerate() {
            let mask = self.fold_masks[index];
            let shift = u32::from(step.shift);
            let (ti, si) = (step.target.index(), step.source.index());
            let (target_lane, source_lane): (&mut [u32], &[u32]) = if ti < si {
                let (low, high) = out.split_at_mut(si);
                (&mut *low[ti], &*high[0])
            } else {
                let (low, high) = out.split_at_mut(ti);
                (&mut *high[0], &*low[si])
            };
            match step.op {
                FoldOp::Xor => {
                    for (target, &source) in target_lane.iter_mut().zip(source_lane) {
                        *target ^= (source >> shift) & mask;
                    }
                }
                FoldOp::Add => {
                    for (target, &source) in target_lane.iter_mut().zip(source_lane) {
                        *target = target.wrapping_add((source >> shift) & mask) & mask;
                    }
                }
            }
        }
    }

    /// Appends the decoded `(channel, address)` tuples of `linear` to `out`
    /// — the batched form of [`PermutationMapping::decode`].
    ///
    /// Instead of the scalar gather path's per-bit `trailing_zeros` loop,
    /// this runs the precomputed scatter table: one shift/mask/OR pass over
    /// the whole slice per contiguous source-bit run
    /// ([`PermutationMapping::scatter_segments`] passes in total), writing
    /// each output field as a separate structure-of-arrays lane.
    ///
    /// # Examples
    ///
    /// ```
    /// use tbi_dram::{
    ///     AddressBatch, BitPermutation, ChannelTopology, DecodeScheme, DeviceGeometry,
    ///     PermutationMapping,
    /// };
    ///
    /// let geometry = DeviceGeometry {
    ///     bank_groups: 4,
    ///     banks_per_group: 4,
    ///     rows: 1 << 16,
    ///     columns_per_row: 128,
    ///     burst_length: 8,
    ///     bus_width_bits: 64,
    /// };
    /// let permutation = BitPermutation::for_scheme(
    ///     DecodeScheme::RowColumnBankBankGroup,
    ///     &geometry,
    ///     ChannelTopology::default(),
    /// )?;
    /// let mapping = PermutationMapping::new(geometry, ChannelTopology::default(), permutation)?;
    /// let linear: Vec<u64> = (0..64).collect();
    /// let mut batch = AddressBatch::new();
    /// mapping.decode_batch(&linear, &mut batch);
    /// assert_eq!(batch.len(), 64);
    /// for (k, &l) in linear.iter().enumerate() {
    ///     assert_eq!(batch.get(k), mapping.decode(l));
    /// }
    /// # Ok::<(), tbi_dram::ConfigError>(())
    /// ```
    pub fn decode_batch(&self, linear: &[u64], out: &mut AddressBatch) {
        out.append_with(linear.len(), |lanes| self.decode_slice(linear, lanes));
    }

    /// Encodes a `(channel, address)` pair back into its linear burst index
    /// — the exact inverse of [`PermutationMapping::decode`] for in-range
    /// components.
    #[must_use]
    pub fn encode(&self, channel: u32, address: PhysicalAddress) -> u64 {
        let mut values = [
            u64::from(channel),
            u64::from(address.rank),
            u64::from(address.bank_group),
            u64::from(address.bank),
            u64::from(address.row),
            u64::from(address.column),
        ];
        // Undo the folds in reverse order: XOR is self-inverse, ADD inverts
        // by modular subtraction.  Each step's source field is unchanged by
        // that step, so its decoded value is already available.
        for (index, step) in self.fold.steps().iter().enumerate().rev() {
            let mask = u64::from(self.fold_masks[index]);
            let value = (values[step.source.index()] >> step.shift) & mask;
            let target = &mut values[step.target.index()];
            *target = match step.op {
                FoldOp::Xor => *target ^ value,
                FoldOp::Add => target.wrapping_add(mask + 1 - value) & mask,
            };
        }
        let mut taken = [0u32; 6];
        let mut linear = 0u64;
        for (bit, field) in self.permutation.fields().iter().enumerate() {
            let index = field.index();
            linear |= ((values[index] >> taken[index]) & 1) << bit;
            taken[index] += 1;
        }
        linear
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressDecoder;
    use crate::standards::{DramConfig, ALL_CONFIGS};
    use proptest::prelude::*;

    fn geometry() -> DeviceGeometry {
        DeviceGeometry {
            bank_groups: 4,
            banks_per_group: 4,
            rows: 1 << 10,
            columns_per_row: 128,
            burst_length: 8,
            bus_width_bits: 64,
        }
    }

    #[test]
    fn scheme_permutations_match_the_address_decoder_on_all_presets() {
        for (standard, rate) in ALL_CONFIGS {
            let config = DramConfig::preset(*standard, *rate).unwrap();
            for scheme in DecodeScheme::ALL {
                for ranks in [1u32, 2, 4] {
                    let topology = ChannelTopology::new(1, ranks);
                    let permutation =
                        BitPermutation::for_scheme(scheme, &config.geometry, topology).unwrap();
                    let mapping =
                        PermutationMapping::new(config.geometry, topology, permutation).unwrap();
                    assert!(mapping.is_shift_mask(), "schemes are contiguous runs");
                    let decoder = AddressDecoder::with_ranks(config.geometry, scheme, ranks);
                    for linear in (0..5_000u64).chain((1 << 22)..((1 << 22) + 256)) {
                        let (channel, address) = mapping.decode(linear);
                        assert_eq!(channel, 0);
                        assert_eq!(
                            address,
                            decoder.decode(linear),
                            "{standard:?}-{rate} {scheme:?} ranks={ranks} linear={linear}"
                        );
                        assert_eq!(mapping.encode(0, address), linear);
                    }
                }
            }
        }
    }

    #[test]
    fn channel_bits_splice_at_the_bottom() {
        for channels in [2u32, 4] {
            let topology = ChannelTopology::new(channels, 1);
            let scheme = DecodeScheme::RowColumnBankBankGroup;
            let permutation = BitPermutation::for_scheme(scheme, &geometry(), topology).unwrap();
            let mapping = PermutationMapping::new(geometry(), topology, permutation).unwrap();
            let decoder = AddressDecoder::new(geometry(), scheme);
            for linear in 0..10_000u64 {
                let (channel, address) = mapping.decode(linear);
                assert_eq!(channel, (linear % u64::from(channels)) as u32);
                assert_eq!(address, decoder.decode(linear / u64::from(channels)));
            }
        }
    }

    #[test]
    fn gather_plan_is_selected_for_non_contiguous_permutations() {
        let scheme = DecodeScheme::RowColumnBankBankGroup;
        let base =
            BitPermutation::for_scheme(scheme, &geometry(), ChannelTopology::default()).unwrap();
        // Swapping a bank-group bit with a row bit breaks both runs.
        let swapped = base.with_swap(0, base.total_bits() as usize - 1);
        let mapping =
            PermutationMapping::new(geometry(), ChannelTopology::default(), swapped).unwrap();
        assert!(!mapping.is_shift_mask());
        // Still a bijection with a working inverse.
        let mut seen = std::collections::HashSet::new();
        for linear in 0..4_096u64 {
            let (channel, address) = mapping.decode(linear);
            assert!(seen.insert((channel, address)), "collision at {linear}");
            assert_eq!(mapping.encode(channel, address), linear);
        }
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let permutation = BitPermutation::for_scheme(
            DecodeScheme::RowBankBankGroupColumn,
            &geometry(),
            ChannelTopology::new(2, 2),
        )
        .unwrap();
        let text = permutation.to_string();
        assert_eq!(text.len() as u32, permutation.total_bits());
        let parsed: BitPermutation = text.parse().unwrap();
        assert_eq!(parsed, permutation);
        assert!(text.starts_with('R'), "rows are the top bits: {text}");
        assert!(
            text.ends_with('H'),
            "channel bits sit at the bottom: {text}"
        );
    }

    #[test]
    fn from_str_rejects_unknown_codes() {
        let err = "RRXC".parse::<BitPermutation>().unwrap_err();
        assert!(err.to_string().contains('X'), "{err}");
        assert!("".parse::<BitPermutation>().is_err());
    }

    #[test]
    fn validate_rejects_width_mismatches_and_non_pow2() {
        let scheme = DecodeScheme::RowColumnBankBankGroup;
        let permutation =
            BitPermutation::for_scheme(scheme, &geometry(), ChannelTopology::default()).unwrap();
        // Wrong topology: the permutation has no rank bits.
        assert!(permutation
            .validate_for(&geometry(), ChannelTopology::new(1, 2))
            .is_err());
        // Non-pow2 geometry cannot be bit-sliced at all.
        let mut odd = geometry();
        odd.rows = 1000;
        assert!(BitPermutation::for_scheme(scheme, &odd, ChannelTopology::default()).is_err());
        assert!(permutation
            .validate_for(&odd, ChannelTopology::default())
            .is_err());
    }

    #[test]
    fn swap_is_an_involution_and_bounds_checked() {
        let permutation = BitPermutation::for_scheme(
            DecodeScheme::RowColumnBankBankGroup,
            &geometry(),
            ChannelTopology::default(),
        )
        .unwrap();
        assert_eq!(permutation.with_swap(2, 9).with_swap(2, 9), permutation);
        let result = std::panic::catch_unwind(|| permutation.with_swap(0, 64));
        assert!(result.is_err(), "out-of-range swap must panic");
    }

    #[test]
    fn field_codes_are_unique_and_round_trip() {
        let codes: std::collections::HashSet<char> =
            AddressField::ALL.iter().map(|f| f.code()).collect();
        assert_eq!(codes.len(), AddressField::ALL.len());
        for field in AddressField::ALL {
            assert_eq!(AddressField::from_code(field.code()), Some(field));
            assert_eq!(
                AddressField::from_code(field.code().to_ascii_lowercase()),
                Some(field)
            );
        }
        assert_eq!(AddressField::from_code('x'), None);
    }

    #[test]
    fn scatter_segments_count_runs_per_field() {
        // A contiguous scheme permutation has exactly one run per non-empty
        // field; single-channel single-rank leaves channel/rank empty.
        let scheme = DecodeScheme::RowColumnBankBankGroup;
        let contiguous =
            BitPermutation::for_scheme(scheme, &geometry(), ChannelTopology::default()).unwrap();
        let mapping =
            PermutationMapping::new(geometry(), ChannelTopology::default(), contiguous).unwrap();
        assert_eq!(mapping.scatter_segments(), 4);
        // Swapping the bottom bit (bank group) with the top bit (row) splits
        // both fields' runs: bank group 1 -> 2 runs, row 1 -> 2 runs.
        let swapped = contiguous.with_swap(0, contiguous.total_bits() as usize - 1);
        let mapping =
            PermutationMapping::new(geometry(), ChannelTopology::default(), swapped).unwrap();
        assert!(!mapping.is_shift_mask());
        assert_eq!(mapping.scatter_segments(), 6);
    }

    #[test]
    fn decode_batch_matches_scalar_decode_for_contiguous_and_gather_plans() {
        let scheme = DecodeScheme::RowColumnBankBankGroup;
        let topology = ChannelTopology::new(2, 2);
        let base = BitPermutation::for_scheme(scheme, &geometry(), topology).unwrap();
        let bits = base.total_bits() as usize;
        // Progressively shuffle: 0 swaps keeps the shift/mask plan, the rest
        // exercise increasingly fragmented scatter tables.
        let variants = [
            base,
            base.with_swap(0, bits - 1),
            base.with_swap(1, 7).with_swap(3, bits - 2).with_swap(0, 9),
        ];
        for permutation in variants {
            let mapping = PermutationMapping::new(geometry(), topology, permutation).unwrap();
            let linear: Vec<u64> = (0..4096u64)
                .chain((1 << 20)..(1 << 20) + 512)
                .chain([u64::MAX, (1 << bits) - 1, 1 << (bits - 1)])
                .collect();
            let mut batch = crate::batch::AddressBatch::new();
            mapping.decode_batch(&linear, &mut batch);
            assert_eq!(batch.len(), linear.len());
            for (k, &l) in linear.iter().enumerate() {
                assert_eq!(
                    batch.get(k),
                    mapping.decode(l),
                    "{permutation} diverged at linear={l}"
                );
            }
        }
    }

    #[test]
    fn decode_batch_appends_after_existing_contents() {
        let scheme = DecodeScheme::RowColumnBankBankGroup;
        let permutation =
            BitPermutation::for_scheme(scheme, &geometry(), ChannelTopology::default()).unwrap();
        let mapping =
            PermutationMapping::new(geometry(), ChannelTopology::default(), permutation).unwrap();
        let mut batch = crate::batch::AddressBatch::new();
        let sentinel = PhysicalAddress::new(3, 3, 7, 7);
        batch.push(9, sentinel);
        mapping.decode_batch(&[5, 6], &mut batch);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.get(0), (9, sentinel));
        assert_eq!(batch.get(1), mapping.decode(5));
        assert_eq!(batch.get(2), mapping.decode(6));
    }

    #[test]
    fn fold_display_round_trips_and_rejects_degenerates() {
        let fold = XorFold::new(&[
            FoldStep {
                target: AddressField::Bank,
                source: AddressField::Row,
                shift: 7,
                op: FoldOp::Xor,
            },
            FoldStep {
                target: AddressField::BankGroup,
                source: AddressField::Column,
                shift: 2,
                op: FoldOp::Add,
            },
        ])
        .unwrap();
        assert_eq!(fold.to_string(), "B^R7,G+C2");
        assert_eq!(fold.to_string().parse::<XorFold>().unwrap(), fold);
        assert_eq!("".parse::<XorFold>().unwrap(), XorFold::identity());
        assert_eq!(fold.without_last().to_string(), "B^R7");
        assert_eq!(
            XorFold::identity().without_last(),
            XorFold::identity(),
            "identity stays identity"
        );
        // Self-fold is rejected, as is overflowing the step budget.
        let degenerate = FoldStep {
            target: AddressField::Row,
            source: AddressField::Row,
            shift: 0,
            op: FoldOp::Xor,
        };
        assert!(XorFold::new(&[degenerate]).is_err());
        let step = fold.steps()[0];
        assert!(XorFold::new(&[step; MAX_FOLD_STEPS + 1]).is_err());
        assert!("B?R7".parse::<XorFold>().is_err());
        assert!("B^Rx".parse::<XorFold>().is_err());
    }

    #[test]
    fn fold_validation_rejects_zero_width_fields_and_long_shifts() {
        let permutation = BitPermutation::for_scheme(
            DecodeScheme::RowColumnBankBankGroup,
            &geometry(),
            ChannelTopology::default(),
        )
        .unwrap();
        // No rank bits in a single-rank subsystem.
        let rank_fold = XorFold::new(&[FoldStep {
            target: AddressField::Rank,
            source: AddressField::Row,
            shift: 0,
            op: FoldOp::Xor,
        }])
        .unwrap();
        assert!(rank_fold.validate_for(&permutation).is_err());
        // Shift past the 10-bit row field.
        let long_shift = XorFold::new(&[FoldStep {
            target: AddressField::Bank,
            source: AddressField::Row,
            shift: 10,
            op: FoldOp::Xor,
        }])
        .unwrap();
        assert!(long_shift.validate_for(&permutation).is_err());
        assert!(PermutationMapping::with_fold(
            geometry(),
            ChannelTopology::default(),
            permutation,
            long_shift
        )
        .is_err());
    }

    #[test]
    fn folded_mappings_are_bijective_with_exact_inverse_for_both_ops() {
        let permutation = BitPermutation::for_scheme(
            DecodeScheme::RowColumnBankBankGroup,
            &geometry(),
            ChannelTopology::default(),
        )
        .unwrap();
        for op in [FoldOp::Xor, FoldOp::Add] {
            let fold = XorFold::new(&[
                FoldStep {
                    target: AddressField::Bank,
                    source: AddressField::Row,
                    shift: 1,
                    op,
                },
                FoldStep {
                    target: AddressField::BankGroup,
                    source: AddressField::Column,
                    shift: 3,
                    op,
                },
            ])
            .unwrap();
            let mapping = PermutationMapping::with_fold(
                geometry(),
                ChannelTopology::default(),
                permutation,
                fold,
            )
            .unwrap();
            let plain =
                PermutationMapping::new(geometry(), ChannelTopology::default(), permutation)
                    .unwrap();
            let mut seen = std::collections::HashSet::new();
            let mut diverged = false;
            for linear in 0..8_192u64 {
                let (channel, address) = mapping.decode(linear);
                assert!(
                    address.is_valid_for_ranks(mapping.geometry(), 1),
                    "{op:?} out of range at {linear}"
                );
                assert!(
                    seen.insert((channel, address)),
                    "{op:?} collision at {linear}"
                );
                assert_eq!(mapping.encode(channel, address), linear, "{op:?} inverse");
                diverged |= mapping.decode(linear) != plain.decode(linear);
            }
            assert!(diverged, "{op:?} fold must actually change the mapping");
        }
    }

    #[test]
    fn add_fold_expresses_the_additive_diagonal() {
        // bank' = (bank + row) mod banks: the optimized scheme's diagonal
        // term, inexpressible as a pure bit permutation.
        let permutation = BitPermutation::for_scheme(
            DecodeScheme::RowColumnBankBankGroup,
            &geometry(),
            ChannelTopology::default(),
        )
        .unwrap();
        let fold = XorFold::new(&[FoldStep {
            target: AddressField::Bank,
            source: AddressField::Row,
            shift: 0,
            op: FoldOp::Add,
        }])
        .unwrap();
        let mapping = PermutationMapping::with_fold(
            geometry(),
            ChannelTopology::default(),
            permutation,
            fold,
        )
        .unwrap();
        let plain =
            PermutationMapping::new(geometry(), ChannelTopology::default(), permutation).unwrap();
        for linear in 0..50_000u64 {
            let (_, folded) = mapping.decode(linear);
            let (_, base) = plain.decode(linear);
            assert_eq!(folded.bank, (base.bank + base.row) % 4, "at {linear}");
            assert_eq!(folded.row, base.row);
            assert_eq!(folded.column, base.column);
        }
    }

    #[test]
    fn folded_decode_batch_matches_scalar_decode() {
        let topology = ChannelTopology::new(2, 2);
        let base =
            BitPermutation::for_scheme(DecodeScheme::RowColumnBankBankGroup, &geometry(), topology)
                .unwrap();
        let bits = base.total_bits() as usize;
        let fold: XorFold = "B+R2,G^C1,K^R0,H+C0".parse().unwrap();
        for permutation in [base, base.with_swap(0, bits - 1)] {
            let mapping =
                PermutationMapping::with_fold(geometry(), topology, permutation, fold).unwrap();
            let linear: Vec<u64> = (0..4_096u64)
                .chain([u64::MAX, (1 << bits) - 1, 1 << (bits - 1)])
                .collect();
            let mut batch = crate::batch::AddressBatch::new();
            mapping.decode_batch(&linear, &mut batch);
            assert_eq!(batch.len(), linear.len());
            for (k, &l) in linear.iter().enumerate() {
                assert_eq!(
                    batch.get(k),
                    mapping.decode(l),
                    "{permutation}|{fold} diverged at linear={l}"
                );
            }
        }
    }

    proptest! {
        /// Any random permutation of the subsystem's bits decodes as a
        /// bijection whose inverse is `encode`, and the gather plan always
        /// agrees with a shift/mask plan derived by sorting the same widths.
        #[test]
        fn random_permutations_are_bijective(seed in 0u64..u64::MAX, swaps in 0usize..32) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut permutation = BitPermutation::for_scheme(
                DecodeScheme::RowColumnBankBankGroup,
                &geometry(),
                ChannelTopology::new(2, 2),
            )
            .unwrap();
            let bits = permutation.total_bits() as usize;
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..swaps {
                let a = rng.gen_range(0..bits);
                let b = rng.gen_range(0..bits);
                permutation = permutation.with_swap(a, b);
            }
            let mapping =
                PermutationMapping::new(geometry(), ChannelTopology::new(2, 2), permutation)
                    .unwrap();
            let mut seen = std::collections::HashSet::new();
            for linear in 0..2_048u64 {
                let (channel, address) = mapping.decode(linear);
                prop_assert!(channel < 2);
                prop_assert!(address.is_valid_for_ranks(mapping.geometry(), 2));
                prop_assert!(seen.insert((channel, address)));
                prop_assert_eq!(mapping.encode(channel, address), linear);
            }
        }
    }
}
