//! Preset configurations for the ten DRAM devices evaluated in the paper.
//!
//! The paper simulates five JEDEC standards at two speed grades each:
//! DDR3-800/1600, DDR4-1600/3200, DDR5-3200/6400, LPDDR4-2133/4266 and
//! LPDDR5-4267/8533.  The presets below use representative datasheet values;
//! they are not copies of any particular vendor datasheet but preserve the
//! ratios (core timing in nanoseconds versus burst duration) that drive the
//! bandwidth-utilization behaviour studied in the paper.
//!
//! Geometry note: each preset models one *channel* as a single logical device
//! whose burst transfers 64 bytes (the 512-bit burst referenced in the
//! paper), i.e. a 64-bit DDR3/DDR4 channel with BL8, a 32-bit DDR5
//! sub-channel with BL16, and 32-bit LPDDR4/LPDDR5 channels with BL16.

use crate::address::{AddressDecoder, DecodeScheme, PhysicalAddress};
use crate::controller::RefreshMode;
use crate::error::ConfigError;
use crate::geometry::{ChannelTopology, DeviceGeometry};
use crate::timing::{ns_to_cycles, TimingParams};

/// The five DRAM standards evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DramStandard {
    /// DDR3 SDRAM (no bank groups, BL8).
    Ddr3,
    /// DDR4 SDRAM (4 bank groups, BL8).
    Ddr4,
    /// DDR5 SDRAM (8 bank groups, BL16, 32-bit sub-channel).
    Ddr5,
    /// LPDDR4 (no bank groups, BL16).
    Lpddr4,
    /// LPDDR5 (4 bank groups, BL16).
    Lpddr5,
    /// HBM2 pseudo-channel (4 bank groups, BL8, 64-bit pseudo-channel; a
    /// stack exposes eight pseudo-channels via the preset's topology).
    Hbm2,
    /// GDDR6 (4 bank groups, BL16, 32-bit channel; two channels per die).
    Gddr6,
    /// DDR5 3DS multi-rank stack (DDR5 sub-channel geometry with four
    /// stacked logical ranks behind one channel).
    Ddr5Stacked,
}

impl DramStandard {
    /// All standards, in the order used by the paper's Table I.
    pub const ALL: [DramStandard; 5] = [
        DramStandard::Ddr3,
        DramStandard::Ddr4,
        DramStandard::Ddr5,
        DramStandard::Lpddr4,
        DramStandard::Lpddr5,
    ];

    /// The three modern scale-out standards beyond the paper's Table I:
    /// HBM2 pseudo-channels, GDDR6 and DDR5 3DS multi-rank stacks.
    pub const MODERN: [DramStandard; 3] = [
        DramStandard::Hbm2,
        DramStandard::Gddr6,
        DramStandard::Ddr5Stacked,
    ];

    /// Returns the two speed grades (data rates in MT/s) simulated for this
    /// standard — the paper's Table I grades for the five paper standards,
    /// representative datasheet grades for the modern presets.
    #[must_use]
    pub fn paper_speed_grades(self) -> [u32; 2] {
        match self {
            DramStandard::Ddr3 => [800, 1600],
            DramStandard::Ddr4 => [1600, 3200],
            DramStandard::Ddr5 => [3200, 6400],
            DramStandard::Lpddr4 => [2133, 4266],
            DramStandard::Lpddr5 => [4267, 8533],
            DramStandard::Hbm2 => [2000, 2400],
            DramStandard::Gddr6 => [14000, 16000],
            DramStandard::Ddr5Stacked => [4800, 6400],
        }
    }

    /// Whether the standard defines bank groups (and therefore a
    /// `t_ccd_l`/`t_ccd_s` distinction).
    #[must_use]
    pub fn has_bank_groups(self) -> bool {
        !matches!(self, DramStandard::Ddr3 | DramStandard::Lpddr4)
    }

    /// Display name matching the paper ("DDR4", "LPDDR5", ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DramStandard::Ddr3 => "DDR3",
            DramStandard::Ddr4 => "DDR4",
            DramStandard::Ddr5 => "DDR5",
            DramStandard::Lpddr4 => "LPDDR4",
            DramStandard::Lpddr5 => "LPDDR5",
            DramStandard::Hbm2 => "HBM2",
            DramStandard::Gddr6 => "GDDR6",
            DramStandard::Ddr5Stacked => "DDR5-3DS",
        }
    }
}

impl std::fmt::Display for DramStandard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// All ten (standard, data rate) pairs from Table I of the paper.
pub const ALL_CONFIGS: &[(DramStandard, u32)] = &[
    (DramStandard::Ddr3, 800),
    (DramStandard::Ddr3, 1600),
    (DramStandard::Ddr4, 1600),
    (DramStandard::Ddr4, 3200),
    (DramStandard::Ddr5, 3200),
    (DramStandard::Ddr5, 6400),
    (DramStandard::Lpddr4, 2133),
    (DramStandard::Lpddr4, 4266),
    (DramStandard::Lpddr5, 4267),
    (DramStandard::Lpddr5, 8533),
];

/// The six modern (standard, data rate) pairs beyond the paper's Table I:
/// HBM2 pseudo-channel stacks, GDDR6 and DDR5 3DS multi-rank devices.  These
/// presets bake a non-trivial [`ChannelTopology`] into the configuration
/// (eight pseudo-channels for HBM2, two channels for GDDR6, four stacked
/// ranks for DDR5-3DS) so topology-aware mappings are exercised end to end.
pub const MODERN_CONFIGS: &[(DramStandard, u32)] = &[
    (DramStandard::Hbm2, 2000),
    (DramStandard::Hbm2, 2400),
    (DramStandard::Gddr6, 14000),
    (DramStandard::Gddr6, 16000),
    (DramStandard::Ddr5Stacked, 4800),
    (DramStandard::Ddr5Stacked, 6400),
];

/// A complete single-channel DRAM configuration: standard, speed grade,
/// geometry and timing.
///
/// # Examples
///
/// ```
/// use tbi_dram::{DramConfig, DramStandard};
///
/// # fn main() -> Result<(), tbi_dram::ConfigError> {
/// let cfg = DramConfig::preset(DramStandard::Lpddr4, 4266)?;
/// assert_eq!(cfg.geometry.total_banks(), 8);
/// assert_eq!(cfg.geometry.burst_bytes(), 64);
/// assert!(cfg.peak_bandwidth_gbps() > 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramConfig {
    /// The JEDEC standard family.
    pub standard: DramStandard,
    /// Data rate in MT/s (e.g. 3200 for DDR4-3200).
    pub data_rate_mtps: u32,
    /// Channel geometry.
    pub geometry: DeviceGeometry,
    /// Timing constraints in device clock cycles.
    pub timing: TimingParams,
    /// Default refresh mode for this standard (all-bank for DDR3/DDR4,
    /// per-bank for DDR5/LPDDR4/LPDDR5).
    pub default_refresh: RefreshMode,
    /// Default linear-address decode scheme used by
    /// [`DramConfig::decode_linear`].
    pub decode_scheme: DecodeScheme,
    /// Channel/rank scale-out of the subsystem.  The paper's ten Table I
    /// presets default to a single-channel, single-rank device; the modern
    /// presets ([`MODERN_CONFIGS`]) bake their native scale-out (HBM2
    /// pseudo-channels, GDDR6 dual channels, DDR5-3DS stacked ranks).  Use
    /// [`DramConfig::with_topology`] (or the builder) to override.
    pub topology: ChannelTopology,
}

impl DramConfig {
    /// Returns the preset configuration for `standard` at `data_rate_mtps`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnknownPreset`] if the (standard, data rate)
    /// pair is not one of the ten configurations from the paper.
    pub fn preset(standard: DramStandard, data_rate_mtps: u32) -> Result<Self, ConfigError> {
        let grades = standard.paper_speed_grades();
        if !grades.contains(&data_rate_mtps) {
            return Err(ConfigError::UnknownPreset {
                standard: standard.name().to_string(),
                data_rate: data_rate_mtps,
            });
        }
        let cfg = build_preset(standard, data_rate_mtps);
        cfg.validate()?;
        Ok(cfg)
    }

    /// Device clock frequency in MHz (half the data rate).
    #[must_use]
    pub fn clock_mhz(&self) -> f64 {
        f64::from(self.data_rate_mtps) / 2.0
    }

    /// Theoretical peak bandwidth of **one channel** in Gbit/s.
    #[must_use]
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        f64::from(self.data_rate_mtps) * 1.0e6 * f64::from(self.geometry.bus_width_bits) / 1.0e9
    }

    /// Theoretical peak bandwidth of the whole subsystem in Gbit/s (one
    /// channel times the channel count; ranks share a bus and do not add
    /// bandwidth).
    #[must_use]
    pub fn aggregate_peak_bandwidth_gbps(&self) -> f64 {
        self.peak_bandwidth_gbps() * f64::from(self.topology.channels)
    }

    /// Returns a copy of this configuration scaled out to `topology`.
    ///
    /// The per-channel geometry and timing are unchanged; only the
    /// channel/rank counts differ.  `with_topology(ChannelTopology::default())`
    /// is the identity.
    #[must_use]
    pub fn with_topology(mut self, topology: ChannelTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Name of the configuration in the paper's style, e.g. `DDR4-3200`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}-{}", self.standard.name(), self.data_rate_mtps)
    }

    /// Decodes a linear burst index into a physical address using the
    /// configuration's default [`DecodeScheme`].
    ///
    /// This is the "row-major" baseline path: the interleaver treats DRAM as
    /// flat storage and the controller's address decoder slices the linear
    /// address into bank/row/column bits (plus rank bits when the topology
    /// has more than one rank per channel).
    #[must_use]
    pub fn decode_linear(&self, burst_index: u64) -> PhysicalAddress {
        AddressDecoder::with_ranks(self.geometry, self.decode_scheme, self.topology.ranks)
            .decode(burst_index)
    }

    /// Validates geometry and timing.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from [`DeviceGeometry::validate`] and
    /// [`TimingParams::validate`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.geometry.validate()?;
        self.timing.validate()?;
        self.topology.validate()?;
        Ok(())
    }
}

/// Builds one of the ten presets.  Only called with validated pairs.
fn build_preset(standard: DramStandard, rate: u32) -> DramConfig {
    let clock = f64::from(rate) / 2.0;
    let c = |ns: f64| ns_to_cycles(ns, clock);
    let ck = |n: u64| n;

    let (geometry, timing, refresh) = match (standard, rate) {
        (DramStandard::Ddr3, _) => {
            let geometry = DeviceGeometry {
                bank_groups: 1,
                banks_per_group: 8,
                rows: 1 << 16,
                columns_per_row: 128,
                burst_length: 8,
                bus_width_bits: 64,
            };
            let (cl, cwl, t_faw_ns) = if rate == 800 {
                (ck(6), ck(5), 37.5)
            } else {
                (ck(11), ck(8), 30.0)
            };
            let timing = TimingParams {
                cl,
                cwl,
                t_rcd: c(13.75).max(5),
                t_rp: c(13.75).max(5),
                t_ras: c(35.0),
                t_rc: c(35.0) + c(13.75).max(5),
                t_rrd_s: c(7.5).max(4),
                t_rrd_l: c(7.5).max(4),
                t_faw: c(t_faw_ns),
                t_ccd_s: 4,
                t_ccd_l: 4,
                t_wr: c(15.0),
                t_wtr_s: c(7.5).max(4),
                t_wtr_l: c(7.5).max(4),
                t_rtp: c(7.5).max(4),
                t_rfc_ab: c(260.0),
                t_rfc_pb: 0,
                t_refi: c(7800.0),
                t_bus_turn: 2,
                t_rank_to_rank: 2,
            };
            (geometry, timing, RefreshMode::AllBank)
        }
        (DramStandard::Ddr4, _) => {
            let geometry = DeviceGeometry {
                bank_groups: 4,
                banks_per_group: 4,
                rows: 1 << 16,
                columns_per_row: 128,
                burst_length: 8,
                bus_width_bits: 64,
            };
            let (cl, cwl) = if rate == 1600 {
                (ck(11), ck(9))
            } else {
                (ck(22), ck(16))
            };
            let timing = TimingParams {
                cl,
                cwl,
                t_rcd: c(13.75),
                t_rp: c(13.75),
                t_ras: c(32.0),
                t_rc: c(32.0) + c(13.75),
                t_rrd_s: c(2.5).max(4),
                t_rrd_l: c(4.9).max(4),
                t_faw: if rate == 1600 { c(25.0) } else { c(21.25) },
                t_ccd_s: 4,
                t_ccd_l: c(5.0).max(4),
                t_wr: c(15.0),
                t_wtr_s: c(2.5).max(2),
                t_wtr_l: c(7.5).max(4),
                t_rtp: c(7.5).max(4),
                t_rfc_ab: c(350.0),
                t_rfc_pb: 0,
                t_refi: c(7800.0),
                t_bus_turn: 2,
                t_rank_to_rank: 2,
            };
            (geometry, timing, RefreshMode::AllBank)
        }
        (DramStandard::Ddr5, _) => {
            let geometry = DeviceGeometry {
                bank_groups: 8,
                banks_per_group: 4,
                rows: 1 << 16,
                columns_per_row: 64,
                burst_length: 16,
                bus_width_bits: 32,
            };
            let cl = c(15.0).max(22);
            let timing = TimingParams {
                cl,
                cwl: cl.saturating_sub(2).max(20),
                t_rcd: c(15.0).max(22),
                t_rp: c(15.0).max(22),
                t_ras: c(32.0),
                t_rc: c(32.0) + c(15.0).max(22),
                t_rrd_s: 8,
                t_rrd_l: c(5.0).max(8),
                t_faw: c(13.333).max(32),
                t_ccd_s: 8,
                t_ccd_l: c(5.0).max(8),
                t_wr: c(30.0),
                t_wtr_s: c(2.5).max(4),
                t_wtr_l: c(10.0).max(16),
                t_rtp: c(7.5).max(12),
                t_rfc_ab: c(295.0),
                t_rfc_pb: c(130.0),
                t_refi: c(3900.0),
                t_bus_turn: 2,
                t_rank_to_rank: 2,
            };
            (geometry, timing, RefreshMode::PerBank)
        }
        (DramStandard::Lpddr4, _) => {
            let geometry = DeviceGeometry {
                bank_groups: 1,
                banks_per_group: 8,
                rows: 1 << 17,
                columns_per_row: 64,
                burst_length: 16,
                bus_width_bits: 32,
            };
            let (cl, cwl) = if rate == 2133 {
                (ck(20), ck(10))
            } else {
                (ck(36), ck(18))
            };
            let timing = TimingParams {
                cl,
                cwl,
                t_rcd: c(18.0),
                t_rp: c(18.0),
                t_ras: c(42.0),
                t_rc: c(42.0) + c(18.0),
                t_rrd_s: c(10.0).max(4),
                t_rrd_l: c(10.0).max(4),
                t_faw: c(40.0),
                t_ccd_s: 8,
                t_ccd_l: 8,
                t_wr: c(18.0),
                t_wtr_s: c(10.0).max(4),
                t_wtr_l: c(10.0).max(4),
                t_rtp: c(7.5).max(4),
                t_rfc_ab: c(280.0),
                t_rfc_pb: c(140.0),
                t_refi: c(3904.0),
                t_bus_turn: 2,
                t_rank_to_rank: 2,
            };
            (geometry, timing, RefreshMode::PerBank)
        }
        (DramStandard::Lpddr5, _) => {
            let geometry = DeviceGeometry {
                bank_groups: 4,
                banks_per_group: 4,
                rows: 1 << 17,
                columns_per_row: 64,
                burst_length: 16,
                bus_width_bits: 32,
            };
            let (cl, cwl) = if rate == 4267 {
                (ck(36), ck(18))
            } else {
                (ck(72), ck(36))
            };
            let timing = TimingParams {
                cl,
                cwl,
                t_rcd: c(18.0),
                t_rp: c(18.0),
                t_ras: c(42.0),
                t_rc: c(42.0) + c(18.0),
                t_rrd_s: c(5.0).max(4),
                t_rrd_l: c(5.0).max(4),
                t_faw: c(20.0),
                t_ccd_s: 8,
                t_ccd_l: if rate == 8533 { 16 } else { 8 },
                t_wr: c(18.0),
                t_wtr_s: c(10.0).max(4),
                t_wtr_l: c(10.0).max(4),
                t_rtp: c(7.5).max(4),
                t_rfc_ab: c(280.0),
                t_rfc_pb: c(140.0),
                t_refi: c(3904.0),
                t_bus_turn: 2,
                t_rank_to_rank: 2,
            };
            (geometry, timing, RefreshMode::PerBank)
        }
        (DramStandard::Hbm2, _) => {
            // One 64-bit pseudo-channel with BL8 (a 64-byte burst); the
            // stack's eight pseudo-channels come from the baked topology.
            // 2^15 rows so a pseudo-channel holds the paper's full-size
            // interleaver under the optimized mapping's padded footprint
            // (each channel addresses the whole padded frame; the stripe
            // router interleaves accesses, not capacity).
            let geometry = DeviceGeometry {
                bank_groups: 4,
                banks_per_group: 4,
                rows: 1 << 15,
                columns_per_row: 64,
                burst_length: 8,
                bus_width_bits: 64,
            };
            let timing = TimingParams {
                cl: c(14.0),
                cwl: c(7.0),
                t_rcd: c(14.0),
                t_rp: c(14.0),
                t_ras: c(33.0),
                t_rc: c(33.0) + c(14.0),
                t_rrd_s: c(4.0).max(4),
                t_rrd_l: c(6.0).max(4),
                t_faw: c(30.0),
                t_ccd_s: 4,
                t_ccd_l: c(4.0).max(4),
                t_wr: c(15.0),
                t_wtr_s: c(2.5).max(2),
                t_wtr_l: c(7.5).max(4),
                t_rtp: c(7.5).max(4),
                t_rfc_ab: c(260.0),
                t_rfc_pb: c(160.0),
                t_refi: c(3900.0),
                t_bus_turn: 2,
                t_rank_to_rank: 2,
            };
            (geometry, timing, RefreshMode::PerBank)
        }
        (DramStandard::Gddr6, _) => {
            // One 32-bit channel with BL16 (a 64-byte burst); a die exposes
            // two such channels via the baked topology.  2^15 rows for the
            // same full-size capacity reason as HBM2 above.
            let geometry = DeviceGeometry {
                bank_groups: 4,
                banks_per_group: 4,
                rows: 1 << 15,
                columns_per_row: 64,
                burst_length: 16,
                bus_width_bits: 32,
            };
            let timing = TimingParams {
                cl: c(18.0),
                cwl: c(6.0),
                t_rcd: c(18.0),
                t_rp: c(18.0),
                t_ras: c(28.0),
                t_rc: c(28.0) + c(18.0),
                t_rrd_s: c(6.0).max(8),
                t_rrd_l: c(6.0).max(8),
                t_faw: c(24.0),
                t_ccd_s: 8,
                t_ccd_l: c(1.5).max(8),
                t_wr: c(15.0),
                t_wtr_s: c(2.5).max(4),
                t_wtr_l: c(5.0).max(8),
                t_rtp: c(2.0).max(8),
                t_rfc_ab: c(110.0),
                t_rfc_pb: c(60.0),
                t_refi: c(1900.0),
                t_bus_turn: 2,
                t_rank_to_rank: 2,
            };
            (geometry, timing, RefreshMode::PerBank)
        }
        (DramStandard::Ddr5Stacked, _) => {
            // DDR5 sub-channel geometry; the 3DS stack adds four logical
            // ranks behind the channel (baked topology), a longer refresh
            // (all dies refresh through one interface) and a slower
            // rank-to-rank bus turnaround through the TSV mux.
            let geometry = DeviceGeometry {
                bank_groups: 8,
                banks_per_group: 4,
                rows: 1 << 16,
                columns_per_row: 64,
                burst_length: 16,
                bus_width_bits: 32,
            };
            let cl = c(16.0).max(22);
            let timing = TimingParams {
                cl,
                cwl: cl.saturating_sub(2).max(20),
                t_rcd: c(16.0).max(22),
                t_rp: c(16.0).max(22),
                t_ras: c(32.0),
                t_rc: c(32.0) + c(16.0).max(22),
                t_rrd_s: 8,
                t_rrd_l: c(5.0).max(8),
                t_faw: c(13.333).max(32),
                t_ccd_s: 8,
                t_ccd_l: c(5.0).max(8),
                t_wr: c(30.0),
                t_wtr_s: c(2.5).max(4),
                t_wtr_l: c(10.0).max(16),
                t_rtp: c(7.5).max(12),
                t_rfc_ab: c(410.0),
                t_rfc_pb: c(190.0),
                t_refi: c(3900.0),
                t_bus_turn: 2,
                t_rank_to_rank: 4,
            };
            (geometry, timing, RefreshMode::PerBank)
        }
    };

    let topology = match standard {
        DramStandard::Hbm2 => ChannelTopology::new(8, 1),
        DramStandard::Gddr6 => ChannelTopology::new(2, 1),
        DramStandard::Ddr5Stacked => ChannelTopology::new(1, 4),
        _ => ChannelTopology::default(),
    };

    DramConfig {
        standard,
        data_rate_mtps: rate,
        geometry,
        timing,
        default_refresh: refresh,
        decode_scheme: DecodeScheme::RowColumnBankBankGroup,
        topology,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_presets_build_and_validate() {
        for (standard, rate) in ALL_CONFIGS {
            let cfg = DramConfig::preset(*standard, *rate).expect("preset must exist");
            assert_eq!(cfg.standard, *standard);
            assert_eq!(cfg.data_rate_mtps, *rate);
            assert!(cfg.validate().is_ok(), "{}", cfg.label());
            // All configurations use 64-byte bursts so that the interleaver's
            // burst-level index space is comparable across standards.
            assert_eq!(cfg.geometry.burst_bytes(), 64, "{}", cfg.label());
        }
    }

    #[test]
    fn all_six_modern_presets_build_and_validate() {
        for (standard, rate) in MODERN_CONFIGS {
            let cfg = DramConfig::preset(*standard, *rate).expect("preset must exist");
            assert_eq!(cfg.standard, *standard);
            assert_eq!(cfg.data_rate_mtps, *rate);
            assert!(cfg.validate().is_ok(), "{}", cfg.label());
            // The modern presets keep the 64-byte burst so the interleaver's
            // burst-level index space stays comparable with Table I.
            assert_eq!(cfg.geometry.burst_bytes(), 64, "{}", cfg.label());
            // Each modern preset bakes a non-trivial scale-out topology.
            assert!(!cfg.topology.is_single(), "{}", cfg.label());
        }
    }

    #[test]
    fn modern_presets_bake_their_native_topology() {
        let hbm = DramConfig::preset(DramStandard::Hbm2, 2400).unwrap();
        assert_eq!((hbm.topology.channels, hbm.topology.ranks), (8, 1));
        let gddr = DramConfig::preset(DramStandard::Gddr6, 16000).unwrap();
        assert_eq!((gddr.topology.channels, gddr.topology.ranks), (2, 1));
        let tds = DramConfig::preset(DramStandard::Ddr5Stacked, 6400).unwrap();
        assert_eq!((tds.topology.channels, tds.topology.ranks), (1, 4));
    }

    #[test]
    fn modern_labels_and_capacity() {
        let tds = DramConfig::preset(DramStandard::Ddr5Stacked, 6400).unwrap();
        // The 3DS label cannot collide with the plain DDR5 presets.
        assert_eq!(tds.label(), "DDR5-3DS-6400");
        for (standard, rate) in MODERN_CONFIGS {
            let cfg = DramConfig::preset(*standard, *rate).unwrap();
            // Even a single channel of each modern preset holds the paper's
            // full-size 12.5-million-burst interleaver *under the optimized
            // mapping's padded square footprint* (~25.4 M bursts at
            // n = 5000): the channel stripe router interleaves accesses, not
            // capacity, so every channel addresses the whole padded frame.
            assert!(
                cfg.geometry.total_bursts() >= 25_400_000,
                "{} too small: {} bursts",
                cfg.label(),
                cfg.geometry.total_bursts()
            );
        }
    }

    #[test]
    fn unknown_preset_is_rejected() {
        let err = DramConfig::preset(DramStandard::Ddr4, 2400).unwrap_err();
        assert!(matches!(err, ConfigError::UnknownPreset { .. }));
    }

    #[test]
    fn bank_group_standards_have_ccd_penalty_at_top_speed() {
        for standard in [DramStandard::Ddr4, DramStandard::Ddr5, DramStandard::Lpddr5] {
            let fast = standard.paper_speed_grades()[1];
            let cfg = DramConfig::preset(standard, fast).unwrap();
            assert!(
                cfg.timing.t_ccd_l > cfg.timing.t_ccd_s,
                "{} should have a bank-group penalty at {fast}",
                standard
            );
        }
    }

    #[test]
    fn non_bank_group_standards_have_single_ccd() {
        for standard in [DramStandard::Ddr3, DramStandard::Lpddr4] {
            for rate in standard.paper_speed_grades() {
                let cfg = DramConfig::preset(standard, rate).unwrap();
                assert_eq!(cfg.geometry.bank_groups, 1);
                assert_eq!(cfg.timing.t_ccd_l, cfg.timing.t_ccd_s);
            }
        }
    }

    #[test]
    fn faster_grade_has_higher_peak_bandwidth() {
        for standard in DramStandard::ALL {
            let [slow, fast] = standard.paper_speed_grades();
            let s = DramConfig::preset(standard, slow).unwrap();
            let f = DramConfig::preset(standard, fast).unwrap();
            assert!(f.peak_bandwidth_gbps() > s.peak_bandwidth_gbps());
        }
    }

    #[test]
    fn capacity_fits_a_12_5_million_burst_interleaver() {
        for (standard, rate) in ALL_CONFIGS {
            let cfg = DramConfig::preset(*standard, *rate).unwrap();
            assert!(
                cfg.geometry.total_bursts() >= 12_500_000,
                "{} too small: {} bursts",
                cfg.label(),
                cfg.geometry.total_bursts()
            );
        }
    }

    #[test]
    fn labels_match_paper_format() {
        let cfg = DramConfig::preset(DramStandard::Lpddr5, 8533).unwrap();
        assert_eq!(cfg.label(), "LPDDR5-8533");
    }

    #[test]
    fn ddr3_ddr4_use_all_bank_refresh_lp_and_ddr5_per_bank() {
        assert_eq!(
            DramConfig::preset(DramStandard::Ddr3, 800)
                .unwrap()
                .default_refresh,
            RefreshMode::AllBank
        );
        assert_eq!(
            DramConfig::preset(DramStandard::Ddr4, 3200)
                .unwrap()
                .default_refresh,
            RefreshMode::AllBank
        );
        for standard in [
            DramStandard::Ddr5,
            DramStandard::Lpddr4,
            DramStandard::Lpddr5,
        ] {
            let rate = standard.paper_speed_grades()[0];
            assert_eq!(
                DramConfig::preset(standard, rate).unwrap().default_refresh,
                RefreshMode::PerBank
            );
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(DramStandard::Lpddr4.to_string(), "LPDDR4");
        assert_eq!(DramStandard::Ddr5.to_string(), "DDR5");
    }
}
