//! The DRAM command set issued by the memory controller.

use crate::address::PhysicalAddress;

/// Kind of DRAM command, without its target address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Activate (open) a row in one bank.
    Activate,
    /// Precharge (close) the open row of one bank.
    Precharge,
    /// Precharge all banks.
    PrechargeAll,
    /// Read one burst from the open row.
    Read,
    /// Write one burst to the open row.
    Write,
    /// All-bank refresh.
    RefreshAll,
    /// Per-bank refresh of a single bank.
    RefreshBank,
}

impl CommandKind {
    /// Whether the command transfers data on the data bus.
    #[must_use]
    pub fn is_column(self) -> bool {
        matches!(self, CommandKind::Read | CommandKind::Write)
    }

    /// Whether the command is a refresh command.
    #[must_use]
    pub fn is_refresh(self) -> bool {
        matches!(self, CommandKind::RefreshAll | CommandKind::RefreshBank)
    }
}

/// A concrete DRAM command with its target.
///
/// For [`CommandKind::PrechargeAll`] and [`CommandKind::RefreshAll`] the
/// address fields are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Command {
    /// The command kind.
    pub kind: CommandKind,
    /// Target address (bank/row/column as applicable).
    pub address: PhysicalAddress,
}

impl Command {
    /// Creates an activate command for `address`'s bank and row.
    #[must_use]
    pub fn activate(address: PhysicalAddress) -> Self {
        Self {
            kind: CommandKind::Activate,
            address,
        }
    }

    /// Creates a precharge command for `address`'s bank.
    #[must_use]
    pub fn precharge(address: PhysicalAddress) -> Self {
        Self {
            kind: CommandKind::Precharge,
            address,
        }
    }

    /// Creates a read command for `address`.
    #[must_use]
    pub fn read(address: PhysicalAddress) -> Self {
        Self {
            kind: CommandKind::Read,
            address,
        }
    }

    /// Creates a write command for `address`.
    #[must_use]
    pub fn write(address: PhysicalAddress) -> Self {
        Self {
            kind: CommandKind::Write,
            address,
        }
    }
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            CommandKind::Activate => write!(f, "ACT  {}", self.address),
            CommandKind::Precharge => write!(
                f,
                "PRE  BG{} B{}",
                self.address.bank_group, self.address.bank
            ),
            CommandKind::PrechargeAll => write!(f, "PREA"),
            CommandKind::Read => write!(f, "RD   {}", self.address),
            CommandKind::Write => write!(f, "WR   {}", self.address),
            CommandKind::RefreshAll => write!(f, "REFab"),
            CommandKind::RefreshBank => {
                write!(
                    f,
                    "REFpb BG{} B{}",
                    self.address.bank_group, self.address.bank
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_classification() {
        assert!(CommandKind::Read.is_column());
        assert!(CommandKind::Write.is_column());
        assert!(!CommandKind::Activate.is_column());
        assert!(!CommandKind::RefreshAll.is_column());
    }

    #[test]
    fn refresh_classification() {
        assert!(CommandKind::RefreshAll.is_refresh());
        assert!(CommandKind::RefreshBank.is_refresh());
        assert!(!CommandKind::Precharge.is_refresh());
    }

    #[test]
    fn constructors_set_kind() {
        let a = PhysicalAddress::new(0, 1, 2, 3);
        assert_eq!(Command::activate(a).kind, CommandKind::Activate);
        assert_eq!(Command::precharge(a).kind, CommandKind::Precharge);
        assert_eq!(Command::read(a).kind, CommandKind::Read);
        assert_eq!(Command::write(a).kind, CommandKind::Write);
    }

    #[test]
    fn display_is_nonempty() {
        let a = PhysicalAddress::new(0, 1, 2, 3);
        for cmd in [
            Command::activate(a),
            Command::precharge(a),
            Command::read(a),
            Command::write(a),
            Command {
                kind: CommandKind::RefreshAll,
                address: a,
            },
            Command {
                kind: CommandKind::RefreshBank,
                address: a,
            },
            Command {
                kind: CommandKind::PrechargeAll,
                address: a,
            },
        ] {
            assert!(!cmd.to_string().is_empty());
        }
    }
}
