//! Error types for configuration validation.

use std::error::Error;
use std::fmt;

/// Error returned when a DRAM configuration is inconsistent.
///
/// All geometry and timing values are validated when a
/// [`MemorySystem`](crate::MemorySystem) or
/// [`Controller`](crate::Controller) is constructed so that simulation code
/// can rely on invariants such as "burst length is a power of two" or
/// "`t_rc >= t_ras + t_rp`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A geometry field has an invalid value (zero or not a power of two).
    InvalidGeometry {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// A timing parameter is inconsistent with another one.
    InvalidTiming {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// The requested preset (standard + speed grade) is not known.
    UnknownPreset {
        /// Standard name as given by the caller.
        standard: String,
        /// Data rate in MT/s as given by the caller.
        data_rate: u32,
    },
    /// A controller configuration value is invalid.
    InvalidController {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidGeometry { field, reason } => {
                write!(f, "invalid geometry field `{field}`: {reason}")
            }
            ConfigError::InvalidTiming { field, reason } => {
                write!(f, "invalid timing field `{field}`: {reason}")
            }
            ConfigError::UnknownPreset {
                standard,
                data_rate,
            } => write!(f, "unknown DRAM preset {standard}-{data_rate}"),
            ConfigError::InvalidController { field, reason } => {
                write!(f, "invalid controller field `{field}`: {reason}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_field_name() {
        let err = ConfigError::InvalidGeometry {
            field: "banks",
            reason: "must be a power of two".to_string(),
        };
        let text = err.to_string();
        assert!(text.contains("banks"));
        assert!(text.contains("power of two"));
    }

    #[test]
    fn unknown_preset_display() {
        let err = ConfigError::UnknownPreset {
            standard: "DDR4".to_string(),
            data_rate: 1234,
        };
        assert_eq!(err.to_string(), "unknown DRAM preset DDR4-1234");
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
