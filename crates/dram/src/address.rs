//! Physical DRAM addresses and linear-address decoding.
//!
//! A [`PhysicalAddress`] names one burst-aligned location: (bank group, bank,
//! row, column).  The interleaver's *optimized* mapping produces physical
//! addresses directly; the *row-major* baseline produces linear burst indices
//! that are decoded here with a configurable [`DecodeScheme`], mimicking the
//! address mapping stage of a conventional memory controller.

use crate::geometry::DeviceGeometry;

/// A burst-granular physical DRAM address within one channel.
///
/// `column` counts bursts within the row (not individual beats), matching the
/// granularity used throughout the crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhysicalAddress {
    /// Bank group index (0 for standards without bank groups).
    pub bank_group: u32,
    /// Bank index within the bank group.
    pub bank: u32,
    /// Row (page) index within the bank.
    pub row: u32,
    /// Burst-aligned column index within the row.
    pub column: u32,
}

impl PhysicalAddress {
    /// Creates a new physical address.
    #[must_use]
    pub fn new(bank_group: u32, bank: u32, row: u32, column: u32) -> Self {
        Self {
            bank_group,
            bank,
            row,
            column,
        }
    }

    /// Flat bank identifier combining bank group and bank
    /// (`bank_group * banks_per_group + bank`).
    #[must_use]
    pub fn flat_bank(&self, geometry: &DeviceGeometry) -> u32 {
        self.bank_group * geometry.banks_per_group + self.bank
    }

    /// Checks that every component is within the bounds of `geometry`.
    #[must_use]
    pub fn is_valid_for(&self, geometry: &DeviceGeometry) -> bool {
        self.bank_group < geometry.bank_groups
            && self.bank < geometry.banks_per_group
            && self.row < geometry.rows
            && self.column < geometry.columns_per_row
    }
}

impl std::fmt::Display for PhysicalAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BG{} B{} R{} C{}",
            self.bank_group, self.bank, self.row, self.column
        )
    }
}

/// Bit-slicing order used to decode a linear burst index into a
/// [`PhysicalAddress`], listed from most-significant to least-significant
/// field.
///
/// The scheme names follow the usual controller convention: the right-most
/// field changes fastest under a sequential access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DecodeScheme {
    /// `row | bank | bank group | column`: an open-page friendly mapping in
    /// which sequential bursts stream through one row of one bank before
    /// moving to the next bank.
    RowBankBankGroupColumn,
    /// `row | column | bank | bank group`: a bank-interleaved mapping in
    /// which sequential bursts rotate through all banks (bank group fastest),
    /// hiding activates and precharges behind transfers on other banks.  This
    /// is the default and corresponds to the baseline controller mapping
    /// assumed for the paper's "row-major" columns.
    #[default]
    RowColumnBankBankGroup,
    /// `bank | bank group | row | column`: a bank-partitioned mapping where
    /// each bank owns a contiguous slice of the linear space.
    BankBankGroupRowColumn,
}

impl DecodeScheme {
    /// All decode schemes, useful for parameter sweeps.
    pub const ALL: [DecodeScheme; 3] = [
        DecodeScheme::RowBankBankGroupColumn,
        DecodeScheme::RowColumnBankBankGroup,
        DecodeScheme::BankBankGroupRowColumn,
    ];
}

/// Decodes linear burst indices into physical addresses according to a
/// [`DecodeScheme`].
///
/// # Examples
///
/// ```
/// use tbi_dram::{AddressDecoder, DecodeScheme, DeviceGeometry};
///
/// let geometry = DeviceGeometry {
///     bank_groups: 4,
///     banks_per_group: 4,
///     rows: 1 << 16,
///     columns_per_row: 128,
///     burst_length: 8,
///     bus_width_bits: 64,
/// };
/// let decoder = AddressDecoder::new(geometry, DecodeScheme::RowColumnBankBankGroup);
/// let a0 = decoder.decode(0);
/// let a1 = decoder.decode(1);
/// // With the bank-interleaved scheme consecutive bursts hit different bank groups.
/// assert_ne!(a0.bank_group, a1.bank_group);
/// assert_eq!(decoder.encode(a1), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressDecoder {
    geometry: DeviceGeometry,
    scheme: DecodeScheme,
    /// Shift/mask fast path, available when every geometry dimension is a
    /// power of two (true for all JEDEC presets).  Hardware address decoders
    /// are pure bit-slicing for the same reason; the fallback divide chain
    /// only exists for exotic custom geometries.
    shifts: Option<DecodeShifts>,
}

/// Precomputed log2 field widths for power-of-two geometries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DecodeShifts {
    cols: u32,
    bgs: u32,
    banks: u32,
    rows: u32,
}

impl DecodeShifts {
    fn for_geometry(g: &DeviceGeometry) -> Option<Self> {
        let all_pow2 = g.columns_per_row.is_power_of_two()
            && g.bank_groups.is_power_of_two()
            && g.banks_per_group.is_power_of_two()
            && g.rows.is_power_of_two();
        all_pow2.then(|| Self {
            cols: g.columns_per_row.trailing_zeros(),
            bgs: g.bank_groups.trailing_zeros(),
            banks: g.banks_per_group.trailing_zeros(),
            rows: g.rows.trailing_zeros(),
        })
    }
}

impl AddressDecoder {
    /// Creates a decoder for the given geometry and scheme.
    #[must_use]
    pub fn new(geometry: DeviceGeometry, scheme: DecodeScheme) -> Self {
        Self {
            geometry,
            scheme,
            shifts: DecodeShifts::for_geometry(&geometry),
        }
    }

    /// The decode scheme used by this decoder.
    #[must_use]
    pub fn scheme(&self) -> DecodeScheme {
        self.scheme
    }

    /// The geometry used by this decoder.
    #[must_use]
    pub fn geometry(&self) -> DeviceGeometry {
        self.geometry
    }

    /// Decodes a linear burst index into a physical address.
    ///
    /// Indices beyond the device capacity wrap around (the row field is
    /// reduced modulo the row count), which keeps synthetic sweeps simple.
    #[must_use]
    pub fn decode(&self, burst_index: u64) -> PhysicalAddress {
        if let Some(s) = self.shifts {
            // Pure bit-slicing for power-of-two geometries (the hot path:
            // every preset qualifies).
            let mask = |v: u64, bits: u32| v & ((1u64 << bits) - 1);
            let (bank_group, bank, row, column) = match self.scheme {
                DecodeScheme::RowBankBankGroupColumn => {
                    let column = mask(burst_index, s.cols);
                    let rest = burst_index >> s.cols;
                    let bank_group = mask(rest, s.bgs);
                    let rest = rest >> s.bgs;
                    let bank = mask(rest, s.banks);
                    let row = mask(rest >> s.banks, s.rows);
                    (bank_group, bank, row, column)
                }
                DecodeScheme::RowColumnBankBankGroup => {
                    let bank_group = mask(burst_index, s.bgs);
                    let rest = burst_index >> s.bgs;
                    let bank = mask(rest, s.banks);
                    let rest = rest >> s.banks;
                    let column = mask(rest, s.cols);
                    let row = mask(rest >> s.cols, s.rows);
                    (bank_group, bank, row, column)
                }
                DecodeScheme::BankBankGroupRowColumn => {
                    let column = mask(burst_index, s.cols);
                    let rest = burst_index >> s.cols;
                    let row = mask(rest, s.rows);
                    let rest = rest >> s.rows;
                    let bank_group = mask(rest, s.bgs);
                    let bank = mask(rest >> s.bgs, s.banks);
                    (bank_group, bank, row, column)
                }
            };
            return PhysicalAddress {
                bank_group: bank_group as u32,
                bank: bank as u32,
                row: row as u32,
                column: column as u32,
            };
        }
        let g = &self.geometry;
        let cols = u64::from(g.columns_per_row);
        let bgs = u64::from(g.bank_groups);
        let banks = u64::from(g.banks_per_group);
        let rows = u64::from(g.rows);

        let (bank_group, bank, row, column) = match self.scheme {
            DecodeScheme::RowBankBankGroupColumn => {
                let column = burst_index % cols;
                let rest = burst_index / cols;
                let bank_group = rest % bgs;
                let rest = rest / bgs;
                let bank = rest % banks;
                let row = (rest / banks) % rows;
                (bank_group, bank, row, column)
            }
            DecodeScheme::RowColumnBankBankGroup => {
                let bank_group = burst_index % bgs;
                let rest = burst_index / bgs;
                let bank = rest % banks;
                let rest = rest / banks;
                let column = rest % cols;
                let row = (rest / cols) % rows;
                (bank_group, bank, row, column)
            }
            DecodeScheme::BankBankGroupRowColumn => {
                let column = burst_index % cols;
                let rest = burst_index / cols;
                let row = rest % rows;
                let rest = rest / rows;
                let bank_group = rest % bgs;
                let bank = (rest / bgs) % banks;
                (bank_group, bank, row, column)
            }
        };
        PhysicalAddress {
            bank_group: bank_group as u32,
            bank: bank as u32,
            row: row as u32,
            column: column as u32,
        }
    }

    /// Encodes a physical address back into its linear burst index.
    ///
    /// This is the exact inverse of [`AddressDecoder::decode`] for addresses
    /// within the device capacity.
    #[must_use]
    pub fn encode(&self, addr: PhysicalAddress) -> u64 {
        let g = &self.geometry;
        let cols = u64::from(g.columns_per_row);
        let bgs = u64::from(g.bank_groups);
        let banks = u64::from(g.banks_per_group);
        let rows = u64::from(g.rows);
        let (bg, b, r, c) = (
            u64::from(addr.bank_group),
            u64::from(addr.bank),
            u64::from(addr.row),
            u64::from(addr.column),
        );
        match self.scheme {
            DecodeScheme::RowBankBankGroupColumn => ((r * banks + b) * bgs + bg) * cols + c,
            DecodeScheme::RowColumnBankBankGroup => ((r * cols + c) * banks + b) * bgs + bg,
            DecodeScheme::BankBankGroupRowColumn => ((b * bgs + bg) * rows + r) * cols + c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shift_mask_decode_matches_generic_divide_chain() {
        for (standard, rate) in crate::standards::ALL_CONFIGS {
            let config = crate::standards::DramConfig::preset(*standard, *rate).unwrap();
            for scheme in [
                DecodeScheme::RowBankBankGroupColumn,
                DecodeScheme::RowColumnBankBankGroup,
                DecodeScheme::BankBankGroupRowColumn,
            ] {
                let fast = AddressDecoder::new(config.geometry, scheme);
                assert!(fast.shifts.is_some(), "presets must take the fast path");
                let mut generic = fast;
                generic.shifts = None;
                let total = config.geometry.total_bursts();
                for burst in (0..10_000).chain((total - 1_000)..(total + 1_000)) {
                    assert_eq!(
                        fast.decode(burst),
                        generic.decode(burst),
                        "burst {burst} {standard:?}-{rate} {scheme:?}"
                    );
                }
            }
        }
    }

    fn geometry() -> DeviceGeometry {
        DeviceGeometry {
            bank_groups: 4,
            banks_per_group: 4,
            rows: 1 << 10,
            columns_per_row: 128,
            burst_length: 8,
            bus_width_bits: 64,
        }
    }

    #[test]
    fn display_format() {
        let a = PhysicalAddress::new(1, 2, 3, 4);
        assert_eq!(a.to_string(), "BG1 B2 R3 C4");
    }

    #[test]
    fn flat_bank_combines_group_and_bank() {
        let g = geometry();
        let a = PhysicalAddress::new(2, 3, 0, 0);
        assert_eq!(a.flat_bank(&g), 2 * 4 + 3);
    }

    #[test]
    fn validity_check() {
        let g = geometry();
        assert!(PhysicalAddress::new(3, 3, 1023, 127).is_valid_for(&g));
        assert!(!PhysicalAddress::new(4, 0, 0, 0).is_valid_for(&g));
        assert!(!PhysicalAddress::new(0, 4, 0, 0).is_valid_for(&g));
        assert!(!PhysicalAddress::new(0, 0, 1024, 0).is_valid_for(&g));
        assert!(!PhysicalAddress::new(0, 0, 0, 128).is_valid_for(&g));
    }

    #[test]
    fn sequential_bursts_rotate_banks_with_default_scheme() {
        let d = AddressDecoder::new(geometry(), DecodeScheme::RowColumnBankBankGroup);
        let a: Vec<_> = (0..16).map(|i| d.decode(i)).collect();
        // 16 consecutive bursts must touch 16 distinct banks.
        let mut banks: Vec<_> = a.iter().map(|x| x.flat_bank(&geometry())).collect();
        banks.sort_unstable();
        banks.dedup();
        assert_eq!(banks.len(), 16);
        // and stay in the same row/column set
        assert!(a.iter().all(|x| x.row == 0 && x.column == 0));
    }

    #[test]
    fn sequential_bursts_stream_one_row_with_open_page_scheme() {
        let d = AddressDecoder::new(geometry(), DecodeScheme::RowBankBankGroupColumn);
        let a: Vec<_> = (0..128).map(|i| d.decode(i)).collect();
        assert!(a
            .iter()
            .all(|x| x.flat_bank(&geometry()) == 0 && x.row == 0));
        assert_eq!(a.last().unwrap().column, 127);
    }

    #[test]
    fn decode_wraps_beyond_capacity() {
        let g = geometry();
        let d = AddressDecoder::new(g, DecodeScheme::RowColumnBankBankGroup);
        let total = g.total_bursts();
        assert_eq!(d.decode(total), d.decode(0));
    }

    proptest! {
        #[test]
        fn encode_is_inverse_of_decode(index in 0u64..(1u64 << 21), scheme_idx in 0usize..3) {
            let scheme = DecodeScheme::ALL[scheme_idx];
            let d = AddressDecoder::new(geometry(), scheme);
            let addr = d.decode(index);
            prop_assert!(addr.is_valid_for(&geometry()));
            prop_assert_eq!(d.encode(addr), index);
        }

        #[test]
        fn decode_is_a_bijection_on_a_window(start in 0u64..(1u64 << 16)) {
            let d = AddressDecoder::new(geometry(), DecodeScheme::RowColumnBankBankGroup);
            let mut seen = std::collections::HashSet::new();
            for i in start..start + 512 {
                prop_assert!(seen.insert(d.decode(i)), "duplicate address for index {i}");
            }
        }
    }
}
