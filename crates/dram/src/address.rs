//! Physical DRAM addresses and linear-address decoding.
//!
//! A [`PhysicalAddress`] names one burst-aligned location: (bank group, bank,
//! row, column).  The interleaver's *optimized* mapping produces physical
//! addresses directly; the *row-major* baseline produces linear burst indices
//! that are decoded here with a configurable [`DecodeScheme`], mimicking the
//! address mapping stage of a conventional memory controller.

use crate::batch::{AddressBatch, AddressLanesMut};
use crate::geometry::DeviceGeometry;

/// Narrows a decoded field value to `u32`, failing loudly (in debug builds)
/// instead of silently wrapping if a custom geometry ever produces a field
/// wider than 32 bits.
///
/// All field values are remainders modulo `u32` geometry dimensions (or
/// masked to at most 32 bits on the shift path), so the assertion cannot
/// fire for any constructible [`DeviceGeometry`] today; it guards the
/// invariant if wider dimensions are ever added.
#[inline]
fn narrow_field(name: &'static str, value: u64) -> u32 {
    debug_assert!(
        u32::try_from(value).is_ok(),
        "decoded {name} value {value} overflows u32"
    );
    value as u32
}

/// A burst-granular physical DRAM address within one channel.
///
/// `column` counts bursts within the row (not individual beats), matching the
/// granularity used throughout the crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhysicalAddress {
    /// Rank index within the channel (0 on single-rank channels).
    pub rank: u32,
    /// Bank group index (0 for standards without bank groups).
    pub bank_group: u32,
    /// Bank index within the bank group.
    pub bank: u32,
    /// Row (page) index within the bank.
    pub row: u32,
    /// Burst-aligned column index within the row.
    pub column: u32,
}

impl PhysicalAddress {
    /// Creates a new rank-0 physical address (use
    /// [`PhysicalAddress::with_rank`] to target another rank).
    #[must_use]
    pub fn new(bank_group: u32, bank: u32, row: u32, column: u32) -> Self {
        Self {
            rank: 0,
            bank_group,
            bank,
            row,
            column,
        }
    }

    /// Returns this address moved to `rank`.
    #[must_use]
    pub fn with_rank(mut self, rank: u32) -> Self {
        self.rank = rank;
        self
    }

    /// Flat bank identifier combining rank, bank group and bank
    /// (`(rank * bank_groups + bank_group) * banks_per_group + bank`); on
    /// rank 0 this is the classic `bank_group * banks_per_group + bank`.
    #[must_use]
    pub fn flat_bank(&self, geometry: &DeviceGeometry) -> u32 {
        (self.rank * geometry.bank_groups + self.bank_group) * geometry.banks_per_group + self.bank
    }

    /// Checks that every component is within the bounds of one rank of
    /// `geometry` (the rank index itself is checked against the topology by
    /// [`PhysicalAddress::is_valid_for_ranks`]).
    #[must_use]
    pub fn is_valid_for(&self, geometry: &DeviceGeometry) -> bool {
        self.bank_group < geometry.bank_groups
            && self.bank < geometry.banks_per_group
            && self.row < geometry.rows
            && self.column < geometry.columns_per_row
    }

    /// Checks validity against `geometry` replicated over `ranks` ranks.
    #[must_use]
    pub fn is_valid_for_ranks(&self, geometry: &DeviceGeometry, ranks: u32) -> bool {
        self.rank < ranks && self.is_valid_for(geometry)
    }
}

impl std::fmt::Display for PhysicalAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.rank != 0 {
            write!(f, "K{} ", self.rank)?;
        }
        write!(
            f,
            "BG{} B{} R{} C{}",
            self.bank_group, self.bank, self.row, self.column
        )
    }
}

/// Bit-slicing order used to decode a linear burst index into a
/// [`PhysicalAddress`], listed from most-significant to least-significant
/// field.
///
/// The scheme names follow the usual controller convention: the right-most
/// field changes fastest under a sequential access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DecodeScheme {
    /// `row | bank | bank group | column`: an open-page friendly mapping in
    /// which sequential bursts stream through one row of one bank before
    /// moving to the next bank.
    RowBankBankGroupColumn,
    /// `row | column | bank | bank group`: a bank-interleaved mapping in
    /// which sequential bursts rotate through all banks (bank group fastest),
    /// hiding activates and precharges behind transfers on other banks.  This
    /// is the default and corresponds to the baseline controller mapping
    /// assumed for the paper's "row-major" columns.
    #[default]
    RowColumnBankBankGroup,
    /// `bank | bank group | row | column`: a bank-partitioned mapping where
    /// each bank owns a contiguous slice of the linear space.
    BankBankGroupRowColumn,
}

impl DecodeScheme {
    /// All decode schemes, useful for parameter sweeps.
    pub const ALL: [DecodeScheme; 3] = [
        DecodeScheme::RowBankBankGroupColumn,
        DecodeScheme::RowColumnBankBankGroup,
        DecodeScheme::BankBankGroupRowColumn,
    ];
}

/// Decodes linear burst indices into physical addresses according to a
/// [`DecodeScheme`].
///
/// # Examples
///
/// ```
/// use tbi_dram::{AddressDecoder, DecodeScheme, DeviceGeometry};
///
/// let geometry = DeviceGeometry {
///     bank_groups: 4,
///     banks_per_group: 4,
///     rows: 1 << 16,
///     columns_per_row: 128,
///     burst_length: 8,
///     bus_width_bits: 64,
/// };
/// let decoder = AddressDecoder::new(geometry, DecodeScheme::RowColumnBankBankGroup);
/// let a0 = decoder.decode(0);
/// let a1 = decoder.decode(1);
/// // With the bank-interleaved scheme consecutive bursts hit different bank groups.
/// assert_ne!(a0.bank_group, a1.bank_group);
/// assert_eq!(decoder.encode(a1), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressDecoder {
    geometry: DeviceGeometry,
    scheme: DecodeScheme,
    /// Ranks the linear space spans; rank bits are spliced into the decode
    /// chain directly above the bank bits (below them for the
    /// bank-partitioned scheme, where the rank owns a contiguous slice).
    ranks: u32,
    /// Shift/mask fast path, available when every geometry dimension is a
    /// power of two (true for all JEDEC presets).  Hardware address decoders
    /// are pure bit-slicing for the same reason; the fallback divide chain
    /// only exists for exotic custom geometries.
    shifts: Option<DecodeShifts>,
}

/// Precomputed log2 field widths for power-of-two geometries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DecodeShifts {
    cols: u32,
    bgs: u32,
    banks: u32,
    rows: u32,
    ranks: u32,
}

impl DecodeShifts {
    fn for_geometry(g: &DeviceGeometry, ranks: u32) -> Option<Self> {
        let all_pow2 = g.columns_per_row.is_power_of_two()
            && g.bank_groups.is_power_of_two()
            && g.banks_per_group.is_power_of_two()
            && g.rows.is_power_of_two()
            && ranks.is_power_of_two();
        all_pow2.then(|| Self {
            cols: g.columns_per_row.trailing_zeros(),
            bgs: g.bank_groups.trailing_zeros(),
            banks: g.banks_per_group.trailing_zeros(),
            rows: g.rows.trailing_zeros(),
            ranks: ranks.trailing_zeros(),
        })
    }
}

impl AddressDecoder {
    /// Creates a single-rank decoder for the given geometry and scheme.
    #[must_use]
    pub fn new(geometry: DeviceGeometry, scheme: DecodeScheme) -> Self {
        Self::with_ranks(geometry, scheme, 1)
    }

    /// Creates a decoder whose linear space spans `ranks` ranks of
    /// `geometry`.  With `ranks == 1` this is exactly [`AddressDecoder::new`]
    /// (the rank field decodes to 0 and no bits are consumed).
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero.
    #[must_use]
    pub fn with_ranks(geometry: DeviceGeometry, scheme: DecodeScheme, ranks: u32) -> Self {
        assert!(ranks > 0, "rank count must be non-zero");
        Self {
            geometry,
            scheme,
            ranks,
            shifts: DecodeShifts::for_geometry(&geometry, ranks),
        }
    }

    /// The decode scheme used by this decoder.
    #[must_use]
    pub fn scheme(&self) -> DecodeScheme {
        self.scheme
    }

    /// The geometry used by this decoder.
    #[must_use]
    pub fn geometry(&self) -> DeviceGeometry {
        self.geometry
    }

    /// The number of ranks the linear space spans.
    #[must_use]
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Decodes a linear burst index into a physical address.
    ///
    /// Indices beyond the device capacity wrap around (the row field is
    /// reduced modulo the row count), which keeps synthetic sweeps simple.
    #[must_use]
    pub fn decode(&self, burst_index: u64) -> PhysicalAddress {
        if let Some(s) = self.shifts {
            // Pure bit-slicing for power-of-two geometries (the hot path:
            // every preset qualifies).  The rank field sits directly above
            // the bank bits (above row/column for the bank-partitioned
            // scheme); with one rank it is a zero-width no-op.
            let mask = |v: u64, bits: u32| v & ((1u64 << bits) - 1);
            let (rank, bank_group, bank, row, column) = match self.scheme {
                DecodeScheme::RowBankBankGroupColumn => {
                    let column = mask(burst_index, s.cols);
                    let rest = burst_index >> s.cols;
                    let bank_group = mask(rest, s.bgs);
                    let rest = rest >> s.bgs;
                    let bank = mask(rest, s.banks);
                    let rest = rest >> s.banks;
                    let rank = mask(rest, s.ranks);
                    let row = mask(rest >> s.ranks, s.rows);
                    (rank, bank_group, bank, row, column)
                }
                DecodeScheme::RowColumnBankBankGroup => {
                    let bank_group = mask(burst_index, s.bgs);
                    let rest = burst_index >> s.bgs;
                    let bank = mask(rest, s.banks);
                    let rest = rest >> s.banks;
                    let rank = mask(rest, s.ranks);
                    let rest = rest >> s.ranks;
                    let column = mask(rest, s.cols);
                    let row = mask(rest >> s.cols, s.rows);
                    (rank, bank_group, bank, row, column)
                }
                DecodeScheme::BankBankGroupRowColumn => {
                    let column = mask(burst_index, s.cols);
                    let rest = burst_index >> s.cols;
                    let row = mask(rest, s.rows);
                    let rest = rest >> s.rows;
                    let bank_group = mask(rest, s.bgs);
                    let rest = rest >> s.bgs;
                    let bank = mask(rest, s.banks);
                    let rank = mask(rest >> s.banks, s.ranks);
                    (rank, bank_group, bank, row, column)
                }
            };
            return PhysicalAddress {
                rank: narrow_field("rank", rank),
                bank_group: narrow_field("bank_group", bank_group),
                bank: narrow_field("bank", bank),
                row: narrow_field("row", row),
                column: narrow_field("column", column),
            };
        }
        let g = &self.geometry;
        let cols = u64::from(g.columns_per_row);
        let bgs = u64::from(g.bank_groups);
        let banks = u64::from(g.banks_per_group);
        let rows = u64::from(g.rows);
        let ranks = u64::from(self.ranks);

        let (rank, bank_group, bank, row, column) = match self.scheme {
            DecodeScheme::RowBankBankGroupColumn => {
                let column = burst_index % cols;
                let rest = burst_index / cols;
                let bank_group = rest % bgs;
                let rest = rest / bgs;
                let bank = rest % banks;
                let rest = rest / banks;
                let rank = rest % ranks;
                let row = (rest / ranks) % rows;
                (rank, bank_group, bank, row, column)
            }
            DecodeScheme::RowColumnBankBankGroup => {
                let bank_group = burst_index % bgs;
                let rest = burst_index / bgs;
                let bank = rest % banks;
                let rest = rest / banks;
                let rank = rest % ranks;
                let rest = rest / ranks;
                let column = rest % cols;
                let row = (rest / cols) % rows;
                (rank, bank_group, bank, row, column)
            }
            DecodeScheme::BankBankGroupRowColumn => {
                let column = burst_index % cols;
                let rest = burst_index / cols;
                let row = rest % rows;
                let rest = rest / rows;
                let bank_group = rest % bgs;
                let rest = rest / bgs;
                let bank = rest % banks;
                let rank = (rest / banks) % ranks;
                (rank, bank_group, bank, row, column)
            }
        };
        PhysicalAddress {
            rank: narrow_field("rank", rank),
            bank_group: narrow_field("bank_group", bank_group),
            bank: narrow_field("bank", bank),
            row: narrow_field("row", row),
            column: narrow_field("column", column),
        }
    }

    /// Decodes a slice of linear burst indices into per-field lanes.
    ///
    /// On the shift/mask fast path (all power-of-two dimensions) each of the
    /// five fields is extracted by one tight shift-and-mask loop over the
    /// whole slice; the generic divide chain falls back to per-element
    /// [`AddressDecoder::decode`].  The channel lane is left untouched (this
    /// decoder is per-channel; callers route channels separately).  Results
    /// are bit-identical to per-element `decode`.
    ///
    /// # Panics
    ///
    /// Panics if any written lane's length differs from `linear.len()`.
    pub fn decode_slice(&self, linear: &[u64], lanes: AddressLanesMut<'_>) {
        let AddressLanesMut {
            channel: _,
            rank,
            bank_group,
            bank,
            row,
            column,
        } = lanes;
        if let Some(s) = self.shifts {
            // Field offsets within the linear index, in scheme order (same
            // layout as the scalar shift path).
            let (rank_at, bg_at, bank_at, row_at, col_at) = match self.scheme {
                DecodeScheme::RowBankBankGroupColumn => {
                    let col = 0;
                    let bg = s.cols;
                    let bank = bg + s.bgs;
                    let rank = bank + s.banks;
                    let row = rank + s.ranks;
                    (rank, bg, bank, row, col)
                }
                DecodeScheme::RowColumnBankBankGroup => {
                    let bg = 0;
                    let bank = s.bgs;
                    let rank = bank + s.banks;
                    let col = rank + s.ranks;
                    let row = col + s.cols;
                    (rank, bg, bank, row, col)
                }
                DecodeScheme::BankBankGroupRowColumn => {
                    let col = 0;
                    let row = s.cols;
                    let bg = row + s.rows;
                    let bank = bg + s.bgs;
                    let rank = bank + s.banks;
                    (rank, bg, bank, row, col)
                }
            };
            let fields: [(&mut [u32], u32, u32); 5] = [
                (rank, rank_at, s.ranks),
                (bank_group, bg_at, s.bgs),
                (bank, bank_at, s.banks),
                (row, row_at, s.rows),
                (column, col_at, s.cols),
            ];
            for (lane, shift, bits) in fields {
                assert_eq!(lane.len(), linear.len(), "lane length mismatch");
                let mask = (1u64 << bits) - 1;
                for (value, &l) in lane.iter_mut().zip(linear) {
                    *value = ((l >> shift) & mask) as u32;
                }
            }
            return;
        }
        assert!(
            rank.len() == linear.len()
                && bank_group.len() == linear.len()
                && bank.len() == linear.len()
                && row.len() == linear.len()
                && column.len() == linear.len(),
            "lane length mismatch"
        );
        for (k, &l) in linear.iter().enumerate() {
            let address = self.decode(l);
            rank[k] = address.rank;
            bank_group[k] = address.bank_group;
            bank[k] = address.bank;
            row[k] = address.row;
            column[k] = address.column;
        }
    }

    /// Appends the decoded addresses of `linear` to `out` with channel 0 —
    /// the batched form of [`AddressDecoder::decode`] (see
    /// [`AddressDecoder::decode_slice`]).
    pub fn decode_batch(&self, linear: &[u64], out: &mut AddressBatch) {
        out.append_with(linear.len(), |lanes| self.decode_slice(linear, lanes));
    }

    /// Encodes a physical address back into its linear burst index.
    ///
    /// This is the exact inverse of [`AddressDecoder::decode`] for addresses
    /// within the device capacity.
    #[must_use]
    pub fn encode(&self, addr: PhysicalAddress) -> u64 {
        let g = &self.geometry;
        let cols = u64::from(g.columns_per_row);
        let bgs = u64::from(g.bank_groups);
        let banks = u64::from(g.banks_per_group);
        let rows = u64::from(g.rows);
        let ranks = u64::from(self.ranks);
        let (k, bg, b, r, c) = (
            u64::from(addr.rank),
            u64::from(addr.bank_group),
            u64::from(addr.bank),
            u64::from(addr.row),
            u64::from(addr.column),
        );
        match self.scheme {
            DecodeScheme::RowBankBankGroupColumn => {
                (((r * ranks + k) * banks + b) * bgs + bg) * cols + c
            }
            DecodeScheme::RowColumnBankBankGroup => {
                (((r * cols + c) * ranks + k) * banks + b) * bgs + bg
            }
            DecodeScheme::BankBankGroupRowColumn => {
                (((k * banks + b) * bgs + bg) * rows + r) * cols + c
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shift_mask_decode_matches_generic_divide_chain() {
        for (standard, rate) in crate::standards::ALL_CONFIGS {
            let config = crate::standards::DramConfig::preset(*standard, *rate).unwrap();
            for scheme in [
                DecodeScheme::RowBankBankGroupColumn,
                DecodeScheme::RowColumnBankBankGroup,
                DecodeScheme::BankBankGroupRowColumn,
            ] {
                let fast = AddressDecoder::new(config.geometry, scheme);
                assert!(fast.shifts.is_some(), "presets must take the fast path");
                let mut generic = fast;
                generic.shifts = None;
                let total = config.geometry.total_bursts();
                for burst in (0..10_000).chain((total - 1_000)..(total + 1_000)) {
                    assert_eq!(
                        fast.decode(burst),
                        generic.decode(burst),
                        "burst {burst} {standard:?}-{rate} {scheme:?}"
                    );
                }
            }
        }
    }

    fn geometry() -> DeviceGeometry {
        DeviceGeometry {
            bank_groups: 4,
            banks_per_group: 4,
            rows: 1 << 10,
            columns_per_row: 128,
            burst_length: 8,
            bus_width_bits: 64,
        }
    }

    #[test]
    fn single_rank_decoder_matches_legacy_constructor() {
        for scheme in DecodeScheme::ALL {
            let legacy = AddressDecoder::new(geometry(), scheme);
            let explicit = AddressDecoder::with_ranks(geometry(), scheme, 1);
            assert_eq!(legacy, explicit);
            for burst in [0u64, 1, 17, 100_000, 1 << 20] {
                let addr = legacy.decode(burst);
                assert_eq!(addr.rank, 0);
                assert_eq!(addr, explicit.decode(burst));
            }
        }
    }

    #[test]
    fn multi_rank_decode_round_trips_and_matches_generic() {
        for scheme in DecodeScheme::ALL {
            for ranks in [2u32, 4] {
                let fast = AddressDecoder::with_ranks(geometry(), scheme, ranks);
                assert!(fast.shifts.is_some());
                let mut generic = fast;
                generic.shifts = None;
                for burst in (0..5_000u64).chain((1 << 21)..((1 << 21) + 512)) {
                    let addr = fast.decode(burst);
                    assert_eq!(addr, generic.decode(burst), "{scheme:?} ranks={ranks}");
                    assert!(addr.rank < ranks);
                    assert_eq!(fast.encode(addr), burst, "{scheme:?} ranks={ranks}");
                }
            }
        }
    }

    #[test]
    fn default_scheme_rotates_all_ranks_banks_before_repeating() {
        // With rank bits directly above the bank bits, the first
        // `ranks * total_banks` bursts all land on distinct (rank, flat bank)
        // units — the classic rank-interleaved decode.
        let g = geometry();
        let d = AddressDecoder::with_ranks(g, DecodeScheme::RowColumnBankBankGroup, 2);
        let units: std::collections::HashSet<u32> =
            (0..32).map(|i| d.decode(i).flat_bank(&g)).collect();
        assert_eq!(units.len(), 32);
    }

    #[test]
    fn rank_aware_flat_bank_and_validity() {
        let g = geometry();
        let addr = PhysicalAddress::new(2, 3, 0, 0).with_rank(1);
        assert_eq!(addr.flat_bank(&g), 16 + 2 * 4 + 3);
        assert!(addr.is_valid_for_ranks(&g, 2));
        assert!(!addr.is_valid_for_ranks(&g, 1));
        assert_eq!(addr.to_string(), "K1 BG2 B3 R0 C0");
        assert_eq!(PhysicalAddress::new(2, 3, 0, 0).to_string(), "BG2 B3 R0 C0");
    }

    #[test]
    fn display_format() {
        let a = PhysicalAddress::new(1, 2, 3, 4);
        assert_eq!(a.to_string(), "BG1 B2 R3 C4");
    }

    #[test]
    fn flat_bank_combines_group_and_bank() {
        let g = geometry();
        let a = PhysicalAddress::new(2, 3, 0, 0);
        assert_eq!(a.flat_bank(&g), 2 * 4 + 3);
    }

    #[test]
    fn validity_check() {
        let g = geometry();
        assert!(PhysicalAddress::new(3, 3, 1023, 127).is_valid_for(&g));
        assert!(!PhysicalAddress::new(4, 0, 0, 0).is_valid_for(&g));
        assert!(!PhysicalAddress::new(0, 4, 0, 0).is_valid_for(&g));
        assert!(!PhysicalAddress::new(0, 0, 1024, 0).is_valid_for(&g));
        assert!(!PhysicalAddress::new(0, 0, 0, 128).is_valid_for(&g));
    }

    #[test]
    fn sequential_bursts_rotate_banks_with_default_scheme() {
        let d = AddressDecoder::new(geometry(), DecodeScheme::RowColumnBankBankGroup);
        let a: Vec<_> = (0..16).map(|i| d.decode(i)).collect();
        // 16 consecutive bursts must touch 16 distinct banks.
        let mut banks: Vec<_> = a.iter().map(|x| x.flat_bank(&geometry())).collect();
        banks.sort_unstable();
        banks.dedup();
        assert_eq!(banks.len(), 16);
        // and stay in the same row/column set
        assert!(a.iter().all(|x| x.row == 0 && x.column == 0));
    }

    #[test]
    fn sequential_bursts_stream_one_row_with_open_page_scheme() {
        let d = AddressDecoder::new(geometry(), DecodeScheme::RowBankBankGroupColumn);
        let a: Vec<_> = (0..128).map(|i| d.decode(i)).collect();
        assert!(a
            .iter()
            .all(|x| x.flat_bank(&geometry()) == 0 && x.row == 0));
        assert_eq!(a.last().unwrap().column, 127);
    }

    #[test]
    fn decode_batch_matches_scalar_decode_on_both_paths() {
        // Fast shift/mask path (pow2 preset) and the generic divide chain
        // (non-pow2 custom geometry), all schemes, multi-rank.
        let mut odd = geometry();
        odd.rows = 1000;
        odd.columns_per_row = 96;
        for g in [geometry(), odd] {
            for scheme in DecodeScheme::ALL {
                for ranks in [1u32, 2] {
                    let decoder = AddressDecoder::with_ranks(g, scheme, ranks);
                    let linear: Vec<u64> = (0..4096u64)
                        .chain((1 << 22)..(1 << 22) + 256)
                        .chain([u64::MAX >> 8])
                        .collect();
                    let mut batch = AddressBatch::new();
                    decoder.decode_batch(&linear, &mut batch);
                    assert_eq!(batch.len(), linear.len());
                    for (k, &l) in linear.iter().enumerate() {
                        assert_eq!(
                            batch.get(k),
                            (0, decoder.decode(l)),
                            "{scheme:?} ranks={ranks} linear={l}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn decode_wraps_beyond_capacity() {
        let g = geometry();
        let d = AddressDecoder::new(g, DecodeScheme::RowColumnBankBankGroup);
        let total = g.total_bursts();
        assert_eq!(d.decode(total), d.decode(0));
    }

    proptest! {
        #[test]
        fn encode_is_inverse_of_decode(index in 0u64..(1u64 << 21), scheme_idx in 0usize..3) {
            let scheme = DecodeScheme::ALL[scheme_idx];
            let d = AddressDecoder::new(geometry(), scheme);
            let addr = d.decode(index);
            prop_assert!(addr.is_valid_for(&geometry()));
            prop_assert_eq!(d.encode(addr), index);
        }

        #[test]
        fn decode_is_a_bijection_on_a_window(start in 0u64..(1u64 << 16)) {
            let d = AddressDecoder::new(geometry(), DecodeScheme::RowColumnBankBankGroup);
            let mut seen = std::collections::HashSet::new();
            for i in start..start + 512 {
                prop_assert!(seen.insert(d.decode(i)), "duplicate address for index {i}");
            }
        }
    }
}
