//! A builder for custom DRAM configurations.
//!
//! The ten presets in [`crate::standards`] cover the paper's Table I; this
//! builder lets downstream users model other devices (different page sizes,
//! bank counts, timings or bus widths) while keeping the validation rules in
//! one place.

use crate::address::DecodeScheme;
use crate::controller::RefreshMode;
use crate::error::ConfigError;
use crate::standards::{DramConfig, DramStandard};
use crate::timing::{ns_to_cycles, TimingParams};

/// Builder for [`DramConfig`] values that are not covered by the presets.
///
/// The builder starts from an existing preset (so all fields have sensible
/// values) and lets individual aspects be overridden before validation.
///
/// # Examples
///
/// ```
/// use tbi_dram::{DramConfigBuilder, DramStandard};
///
/// # fn main() -> Result<(), tbi_dram::ConfigError> {
/// // A hypothetical DDR4-3200 channel with twice the usual page size.
/// let config = DramConfigBuilder::from_preset(DramStandard::Ddr4, 3200)?
///     .columns_per_row(256)
///     .rows(1 << 15)
///     .build()?;
/// assert_eq!(config.geometry.page_bytes(), 16384);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DramConfigBuilder {
    config: DramConfig,
}

impl DramConfigBuilder {
    /// Starts from one of the paper's preset configurations.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnknownPreset`] for an unknown
    /// standard/data-rate pair.
    pub fn from_preset(standard: DramStandard, data_rate_mtps: u32) -> Result<Self, ConfigError> {
        Ok(Self {
            config: DramConfig::preset(standard, data_rate_mtps)?,
        })
    }

    /// Starts from an existing configuration.
    #[must_use]
    pub fn from_config(config: DramConfig) -> Self {
        Self { config }
    }

    /// Overrides the data rate (MT/s).  Timing values in cycles are *not*
    /// rescaled automatically; use [`DramConfigBuilder::scale_core_timings`]
    /// to re-derive them from nanosecond values.
    #[must_use]
    pub fn data_rate_mtps(mut self, data_rate_mtps: u32) -> Self {
        self.config.data_rate_mtps = data_rate_mtps;
        self
    }

    /// Overrides the number of bank groups.
    #[must_use]
    pub fn bank_groups(mut self, bank_groups: u32) -> Self {
        self.config.geometry.bank_groups = bank_groups;
        self
    }

    /// Overrides the number of banks per bank group.
    #[must_use]
    pub fn banks_per_group(mut self, banks_per_group: u32) -> Self {
        self.config.geometry.banks_per_group = banks_per_group;
        self
    }

    /// Overrides the number of rows per bank.
    #[must_use]
    pub fn rows(mut self, rows: u32) -> Self {
        self.config.geometry.rows = rows;
        self
    }

    /// Overrides the page size in bursts.
    #[must_use]
    pub fn columns_per_row(mut self, columns_per_row: u32) -> Self {
        self.config.geometry.columns_per_row = columns_per_row;
        self
    }

    /// Overrides the data-bus width in bits.
    #[must_use]
    pub fn bus_width_bits(mut self, bus_width_bits: u32) -> Self {
        self.config.geometry.bus_width_bits = bus_width_bits;
        self
    }

    /// Overrides the full timing parameter set.
    #[must_use]
    pub fn timing(mut self, timing: TimingParams) -> Self {
        self.config.timing = timing;
        self
    }

    /// Overrides the default refresh mode.
    #[must_use]
    pub fn refresh_mode(mut self, mode: RefreshMode) -> Self {
        self.config.default_refresh = mode;
        self
    }

    /// Overrides the number of independent channels.
    #[must_use]
    pub fn channels(mut self, channels: u32) -> Self {
        self.config.topology.channels = channels;
        self
    }

    /// Overrides the number of ranks per channel.
    #[must_use]
    pub fn ranks(mut self, ranks: u32) -> Self {
        self.config.topology.ranks = ranks;
        self
    }

    /// Overrides the linear-address decode scheme used for the row-major
    /// baseline.
    #[must_use]
    pub fn decode_scheme(mut self, scheme: DecodeScheme) -> Self {
        self.config.decode_scheme = scheme;
        self
    }

    /// Re-derives the nanosecond-constant core timings (tRCD, tRP, tRAS, tRC,
    /// tWR, tRFC, tREFI) for a new data rate, keeping the clock-cycle-constant
    /// parameters (tCCD, burst length) unchanged.  This mimics moving to a
    /// faster speed grade of the same die.
    #[must_use]
    pub fn scale_core_timings(mut self, from_mtps: u32, to_mtps: u32) -> Self {
        let from_clock = f64::from(from_mtps) / 2.0;
        let to_clock = f64::from(to_mtps) / 2.0;
        let rescale = |cycles: u64| -> u64 {
            let ns = cycles as f64 / from_clock * 1000.0;
            ns_to_cycles(ns, to_clock).max(1)
        };
        let t = &mut self.config.timing;
        t.cl = rescale(t.cl);
        t.cwl = rescale(t.cwl);
        t.t_rcd = rescale(t.t_rcd);
        t.t_rp = rescale(t.t_rp);
        t.t_ras = rescale(t.t_ras);
        // Independent ceil-rounding can leave t_rc one cycle short of
        // t_ras + t_rp; keep the invariant explicitly.
        t.t_rc = rescale(t.t_rc).max(t.t_ras + t.t_rp);
        t.t_rrd_s = rescale(t.t_rrd_s);
        t.t_rrd_l = rescale(t.t_rrd_l);
        t.t_faw = rescale(t.t_faw);
        t.t_wr = rescale(t.t_wr);
        t.t_wtr_s = rescale(t.t_wtr_s);
        t.t_wtr_l = rescale(t.t_wtr_l);
        t.t_rtp = rescale(t.t_rtp);
        t.t_rfc_ab = rescale(t.t_rfc_ab);
        t.t_rfc_pb = rescale(t.t_rfc_pb);
        t.t_refi = rescale(t.t_refi);
        self.config.data_rate_mtps = to_mtps;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if geometry or timing validation fails.
    pub fn build(self) -> Result<DramConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_a_preset() {
        let preset = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let rebuilt = DramConfigBuilder::from_config(preset.clone())
            .build()
            .unwrap();
        assert_eq!(rebuilt, preset);
    }

    #[test]
    fn builder_overrides_geometry() {
        let config = DramConfigBuilder::from_preset(DramStandard::Ddr3, 1600)
            .unwrap()
            .banks_per_group(16)
            .columns_per_row(64)
            .bus_width_bits(32)
            .build()
            .unwrap();
        assert_eq!(config.geometry.total_banks(), 16);
        assert_eq!(config.geometry.burst_bytes(), 32);
    }

    #[test]
    fn builder_rejects_invalid_geometry() {
        let result = DramConfigBuilder::from_preset(DramStandard::Ddr4, 1600)
            .unwrap()
            .banks_per_group(3)
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn scaling_core_timings_keeps_nanosecond_values() {
        let base = DramConfig::preset(DramStandard::Ddr4, 1600).unwrap();
        let scaled = DramConfigBuilder::from_config(base.clone())
            .scale_core_timings(1600, 3200)
            .build()
            .unwrap();
        assert_eq!(scaled.data_rate_mtps, 3200);
        // Doubling the clock roughly doubles the cycle counts of
        // nanosecond-constant parameters.
        assert!(scaled.timing.t_rcd >= base.timing.t_rcd * 2 - 1);
        assert!(scaled.timing.t_rcd <= base.timing.t_rcd * 2 + 1);
        assert!(scaled.timing.t_rfc_ab >= base.timing.t_rfc_ab * 2 - 2);
    }

    #[test]
    fn refresh_and_decode_overrides_apply() {
        let config = DramConfigBuilder::from_preset(DramStandard::Lpddr4, 2133)
            .unwrap()
            .refresh_mode(RefreshMode::Disabled)
            .decode_scheme(DecodeScheme::RowBankBankGroupColumn)
            .build()
            .unwrap();
        assert_eq!(config.default_refresh, RefreshMode::Disabled);
        assert_eq!(config.decode_scheme, DecodeScheme::RowBankBankGroupColumn);
    }
}
