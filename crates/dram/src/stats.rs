//! Bandwidth and row-buffer statistics collected by the controller.

/// Statistics accumulated while the memory system executes requests.
///
/// The headline metric of the paper is
/// [`bus_utilization`](Stats::bus_utilization): the fraction of elapsed device
/// clock cycles during which the data bus carried a burst.  100 % means the
/// channel sustains its theoretical peak bandwidth.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Stats {
    /// Device clock cycles elapsed between the statistics window start and the
    /// completion of the last request.
    pub elapsed_cycles: u64,
    /// Cycles during which the data bus transferred data.
    pub data_bus_busy_cycles: u64,
    /// Number of completed requests.
    pub completed_requests: u64,
    /// Number of read bursts performed.
    pub read_bursts: u64,
    /// Number of write bursts performed.
    pub write_bursts: u64,
    /// Activate commands issued.
    pub activates: u64,
    /// Precharge commands issued (including precharge-all, counted once).
    pub precharges: u64,
    /// All-bank refresh commands issued.
    pub refreshes_all_bank: u64,
    /// Per-bank refresh commands issued.
    pub refreshes_per_bank: u64,
    /// Column accesses that hit an already-open row.
    pub row_hits: u64,
    /// Column accesses that required closing another row first (conflict).
    pub row_conflicts: u64,
    /// Column accesses to an idle (precharged) bank.
    pub row_empties: u64,
    /// Cycles during which the controller could not issue any command although
    /// work was pending (head-of-line stall time, diagnostic only).
    pub stall_cycles: u64,
}

impl Stats {
    /// Creates an empty statistics record.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of elapsed cycles with data on the bus, in `[0, 1]`.
    ///
    /// Returns 0 when no cycles have elapsed.
    #[must_use]
    pub fn bus_utilization(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.data_bus_busy_cycles as f64 / self.elapsed_cycles as f64
        }
    }

    /// Achieved bandwidth in Gbit/s given the device clock in MHz and the
    /// bus width in bits.
    #[must_use]
    pub fn achieved_bandwidth_gbps(&self, clock_mhz: f64, bus_width_bits: u32) -> f64 {
        // Each busy cycle transfers two beats of `bus_width_bits`.
        self.bus_utilization() * clock_mhz * 1.0e6 * 2.0 * f64::from(bus_width_bits) / 1.0e9
    }

    /// Row-buffer hit rate among all column accesses, in `[0, 1]`.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_conflicts + self.row_empties;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Merges another statistics record into this one (fields are summed).
    pub fn merge(&mut self, other: &Stats) {
        self.elapsed_cycles += other.elapsed_cycles;
        self.data_bus_busy_cycles += other.data_bus_busy_cycles;
        self.completed_requests += other.completed_requests;
        self.read_bursts += other.read_bursts;
        self.write_bursts += other.write_bursts;
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.refreshes_all_bank += other.refreshes_all_bank;
        self.refreshes_per_bank += other.refreshes_per_bank;
        self.row_hits += other.row_hits;
        self.row_conflicts += other.row_conflicts;
        self.row_empties += other.row_empties;
        self.stall_cycles += other.stall_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_empty_stats_is_zero() {
        assert_eq!(Stats::new().bus_utilization(), 0.0);
        assert_eq!(Stats::new().row_hit_rate(), 0.0);
    }

    #[test]
    fn utilization_ratio() {
        let s = Stats {
            elapsed_cycles: 200,
            data_bus_busy_cycles: 150,
            ..Stats::default()
        };
        assert!((s.bus_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_scales_with_clock_and_width() {
        let s = Stats {
            elapsed_cycles: 100,
            data_bus_busy_cycles: 100,
            ..Stats::default()
        };
        // Full utilization on a 64-bit bus at 1600 MHz = 3200 MT/s * 64 bit = 204.8 Gbit/s.
        let bw = s.achieved_bandwidth_gbps(1600.0, 64);
        assert!((bw - 204.8).abs() < 1e-9);
    }

    #[test]
    fn hit_rate() {
        let s = Stats {
            row_hits: 30,
            row_conflicts: 10,
            row_empties: 10,
            ..Stats::default()
        };
        assert!((s.row_hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = Stats {
            elapsed_cycles: 10,
            data_bus_busy_cycles: 5,
            completed_requests: 2,
            row_hits: 1,
            ..Stats::default()
        };
        let b = Stats {
            elapsed_cycles: 20,
            data_bus_busy_cycles: 10,
            completed_requests: 3,
            row_conflicts: 4,
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.elapsed_cycles, 30);
        assert_eq!(a.data_bus_busy_cycles, 15);
        assert_eq!(a.completed_requests, 5);
        assert_eq!(a.row_hits, 1);
        assert_eq!(a.row_conflicts, 4);
    }
}
