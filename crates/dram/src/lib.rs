//! # tbi-dram — a timing-faithful DRAM device and memory-controller model
//!
//! This crate is the DRAM substrate used by the
//! [`tbi-interleaver`](https://example.org/tbi) workspace to study how the
//! access pattern of a *triangular block interleaver* maps onto JEDEC DRAM
//! devices (DDR3, DDR4, DDR5, LPDDR4, LPDDR5).  It plays the role that the
//! DRAMSys simulator plays in the original paper: given a stream of read or
//! write bursts addressed by (bank group, bank, row, column), it simulates a
//! single-channel memory controller plus device under the JEDEC timing
//! constraints and reports the achieved **data-bus bandwidth utilization**.
//!
//! Two interchangeable [`TimingEngine`]s advance the clock: the
//! **event-driven** engine (default) jumps from state transition to state
//! transition, while the **cycle-accurate** reference steps one device clock
//! cycle at a time.  They execute the same scheduler and are verified to
//! produce bit-identical statistics; the event engine is simply an order of
//! magnitude faster on interleaver-scale traces (see the
//! [`controller`] module documentation for the invariants).
//!
//! The model enforces the first-order JEDEC timing constraints that determine
//! the difference between "good" and "bad" access patterns:
//!
//! * column-to-column gaps ([`TimingParams::t_ccd_s`] / [`TimingParams::t_ccd_l`],
//!   i.e. the bank-group penalty),
//! * activation-rate limits ([`TimingParams::t_rrd_s`], [`TimingParams::t_rrd_l`],
//!   [`TimingParams::t_faw`]),
//! * row-cycle timings ([`TimingParams::t_rcd`], [`TimingParams::t_rp`],
//!   [`TimingParams::t_ras`], [`TimingParams::t_rc`]),
//! * write-recovery and turnaround ([`TimingParams::t_wr`], [`TimingParams::t_wtr_s`],
//!   [`TimingParams::t_wtr_l`], [`TimingParams::t_rtp`]),
//! * refresh ([`TimingParams::t_rfc_ab`], [`TimingParams::t_refi`]), with
//!   all-bank, per-bank or disabled refresh policies.
//!
//! ## Quick start
//!
//! ```
//! use tbi_dram::{DramConfig, DramStandard, MemorySystem, Request, PhysicalAddress};
//!
//! # fn main() -> Result<(), tbi_dram::ConfigError> {
//! // A DDR4-3200 single-channel configuration.
//! let config = DramConfig::preset(DramStandard::Ddr4, 3200)?;
//! let mut system = MemorySystem::new(config.clone())?;
//!
//! // Write 1024 sequential bursts (decoded with the default address mapping).
//! let trace = (0..1024u64).map(|i| Request::write(config.decode_linear(i)));
//! let stats = system.run_trace(trace);
//! assert_eq!(stats.completed_requests, 1024);
//! assert!(stats.bus_utilization() > 0.5);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`geometry`] | [`DeviceGeometry`] (banks, bank groups, rows, columns, burst length) and [`ChannelTopology`] (channels × ranks) |
//! | [`channel`] | [`ChannelRouter`]: one controller per channel under a shared clock, with aggregated [`CombinedStats`] |
//! | [`timing`] | [`TimingParams`]: all timing constraints in device clock cycles |
//! | [`standards`] | presets for the ten configurations evaluated in the paper |
//! | [`address`] | [`PhysicalAddress`] and linear-address decoding schemes |
//! | [`batch`] | [`AddressBatch`]: structure-of-arrays buffers for batched address generation |
//! | [`permutation`] | [`BitPermutation`]/[`PermutationMapping`]: the searchable bit-permutation generalization of the decode schemes |
//! | [`command`] | the DRAM command set issued by the controller |
//! | [`bank`] | per-bank state machine with earliest-issue bookkeeping |
//! | [`request`] | read/write burst requests |
//! | [`controller`] | transaction queues, FR-FCFS scheduler, page policies, refresh, the two timing engines |
//! | [`sim`] | [`MemorySystem`]: the user-facing simulation driver |
//! | [`stats`] | bandwidth and page hit/miss statistics |
//! | [`energy`] | a DRAMPower-style energy estimate |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod bank;
pub mod batch;
pub mod builder;
pub mod channel;
pub mod command;
pub mod controller;
pub mod energy;
pub mod error;
pub mod geometry;
pub mod permutation;
pub mod request;
pub mod sim;
pub mod standards;
pub mod stats;
pub mod timing;

pub use address::{AddressDecoder, DecodeScheme, PhysicalAddress};
pub use bank::{BankArray, BankId, BankState};
pub use batch::{AddressBatch, AddressLanesMut};
pub use builder::DramConfigBuilder;
pub use channel::{ChannelRouter, CombinedStats};
pub use command::{Command, CommandKind};
pub use controller::{
    Completion, Controller, ControllerConfig, PagePolicy, RefreshMode, SchedulingPolicy,
    TimingEngine,
};
pub use energy::{EnergyParams, EnergyReport};
pub use error::ConfigError;
pub use geometry::{ChannelTopology, DeviceGeometry};
pub use permutation::{
    AddressField, BitPermutation, FoldOp, FoldStep, PermutationMapping, XorFold,
};
pub use request::{BufferedRequests, IteratorSource, Request, RequestKind, RequestSource};
pub use sim::MemorySystem;
pub use standards::{DramConfig, DramStandard};
pub use stats::Stats;
pub use timing::TimingParams;
